//! The four HPC applications of Table I (middle block):
//! checkSparseLU, cholesky, kmeans and knn.

use crate::info::{BenchClass, WorkloadInfo};
use crate::layout::AddressAllocator;
use crate::scale::ScaleConfig;
use taskpoint_runtime::{Program, RegionAccess};
use taskpoint_stats::rng::Xoshiro256pp;
use taskpoint_trace::{AccessPattern, InstructionMix, MemRegion, TraceSpec};

/// checkSparseLU: tiled sparse LU factorization with fill-in, followed by a
/// verification sweep — 11 task types, 22,058 instances.
pub mod sparselu {
    use super::*;

    /// Table I row.
    pub const INFO: WorkloadInfo = WorkloadInfo {
        name: "checkSparseLU",
        class: BenchClass::Application,
        task_types: 11,
        task_instances: 22058,
        property: "Decomposition of large, sparse matrices",
    };

    /// Tiles per matrix dimension.
    const N: usize = 36;
    /// Initial block fill probability.
    const FILL: f64 = 0.40;
    /// Fixed structural seed: the sparsity pattern (and therefore the task
    /// counts) never depends on the user's seed.
    const STRUCT_SEED: u64 = 0x51;

    /// The symbolic factorization: which blocks exist initially, and the
    /// exact operation sequence including fill-in allocations.
    struct Structure {
        initial: Vec<bool>,
        ops: Vec<Op>,
        final_nonnull: Vec<bool>,
    }

    enum Op {
        Lu0(usize),
        Fwd(usize, usize),
        Bdiv(usize, usize),
        /// `(i, j, k, needs_alloc)`
        Bmod(usize, usize, usize, bool),
    }

    fn symbolic() -> Structure {
        let mut rng = Xoshiro256pp::seed_from_u64(STRUCT_SEED);
        let mut nn = vec![false; N * N];
        for i in 0..N {
            for j in 0..N {
                // Diagonal always present; off-diagonal with prob FILL.
                nn[i * N + j] = i == j || rng.next_f64() < FILL;
            }
        }
        let initial = nn.clone();
        let mut ops = Vec::new();
        for k in 0..N {
            ops.push(Op::Lu0(k));
            for j in (k + 1)..N {
                if nn[k * N + j] {
                    ops.push(Op::Fwd(k, j));
                }
            }
            for i in (k + 1)..N {
                if nn[i * N + k] {
                    ops.push(Op::Bdiv(i, k));
                }
            }
            for i in (k + 1)..N {
                if !nn[i * N + k] {
                    continue;
                }
                for j in (k + 1)..N {
                    if !nn[k * N + j] {
                        continue;
                    }
                    let fill = !nn[i * N + j];
                    if fill {
                        nn[i * N + j] = true;
                    }
                    ops.push(Op::Bmod(i, j, k, fill));
                }
            }
        }
        Structure { initial, ops, final_nonnull: nn }
    }

    /// Generates the workload.
    ///
    /// # Panics
    ///
    /// Panics if the structural constants would overflow the Table I
    /// instance count (checked by tests).
    pub fn generate(scale: &ScaleConfig) -> Program {
        let s = symbolic();
        let mut b = Program::builder(INFO.name);
        let genmat_ty = b.add_type("genmat");
        let alloc_ty = b.add_type("alloc_blk");
        let init_ty = b.add_type("init_blk");
        let lu0_ty = b.add_type("lu0");
        let fwd_ty = b.add_type("fwd");
        let bdiv_ty = b.add_type("bdiv");
        let bmod_ty = b.add_type("bmod");
        let copy_ty = b.add_type("copy_blk");
        let check_ty = b.add_type("check_blk");
        let diff_ty = b.add_type("diff_norm");
        let fin_ty = b.add_type("finalize");

        let mut alloc = AddressAllocator::new();
        let descriptor = alloc.alloc_lines(4 * 1024);
        let blocks: Vec<MemRegion> = (0..N * N).map(|_| alloc.alloc_lines(128 * 1024)).collect();
        let mut srng = Xoshiro256pp::seed_from_u64(STRUCT_SEED ^ 0xABCD);
        let mut counters = [0u64; 11];
        let seed = |scale: &ScaleConfig, ty: u32, c: &mut [u64; 11]| {
            let v = scale.instance_seed(INFO.name, ty, c[ty as usize]);
            c[ty as usize] += 1;
            v
        };

        // Base task total, to size the allocation-pool padding.
        let init_count = s.initial.iter().filter(|&&x| x).count();
        let final_count = s.final_nonnull.iter().filter(|&&x| x).count();
        let base = 1 // genmat
            + init_count
            + s.ops.len()
            + s.ops.iter().filter(|o| matches!(o, Op::Bmod(_, _, _, true))).count()
            + 2 * final_count // copy + check
            + N // diff_norm per row
            + 1; // finalize
        assert!(
            base <= INFO.task_instances,
            "structure produced {base} tasks, exceeding Table I's {}",
            INFO.task_instances
        );
        let padding = INFO.task_instances - base;

        // genmat
        let t = TraceSpec::builder()
            .seed(seed(scale, 0, &mut counters))
            .instructions(scale.instructions(900.0))
            .mix(InstructionMix::irregular_int())
            .pattern(AccessPattern::sequential(8))
            .footprint(descriptor)
            .build();
        b.add_task(genmat_ty, t, vec![RegionAccess::output(descriptor)]);

        // Allocation pool (padding): independent pre-allocations, exactly
        // like the real benchmark's per-block `allocate_clean_block` tasks.
        for _ in 0..padding {
            let scratch = alloc.alloc_lines(2 * 1024);
            let t = TraceSpec::builder()
                .seed(seed(scale, 1, &mut counters))
                .instructions(scale.instructions(80.0))
                .mix(InstructionMix::irregular_int())
                .pattern(AccessPattern::sequential(8))
                .footprint(scratch)
                .build();
            b.add_task(alloc_ty, t, vec![]);
        }

        // init_blk for initially non-null blocks.
        for i in 0..N {
            for j in 0..N {
                if s.initial[i * N + j] {
                    let t = TraceSpec::builder()
                        .seed(seed(scale, 2, &mut counters))
                        .instructions(scale.instructions(400.0))
                        .mix(InstructionMix::memory_bound())
                        .pattern(AccessPattern::sequential(8))
                        .footprint(blocks[i * N + j])
                        .build();
                    b.add_task(
                        init_ty,
                        t,
                        vec![
                            RegionAccess::input(descriptor),
                            RegionAccess::output(blocks[i * N + j]),
                        ],
                    );
                }
            }
        }

        // Factorization following the symbolic op sequence.
        for op in &s.ops {
            match *op {
                Op::Lu0(k) => {
                    let t = TraceSpec::builder()
                        .seed(seed(scale, 3, &mut counters))
                        .instructions(scale.instructions(1400.0))
                        .mix(InstructionMix::balanced())
                        .pattern(AccessPattern::sequential(8))
                        .footprint(blocks[k * N + k])
                        .branch_mispredict_rate(0.03)
                        .dependency_rate(0.25)
                        .build();
                    b.add_task(lu0_ty, t, vec![RegionAccess::inout(blocks[k * N + k])]);
                }
                Op::Fwd(k, j) => {
                    let jit = 1.0 + (srng.next_f64() - 0.5) * 0.4;
                    let t = TraceSpec::builder()
                        .seed(seed(scale, 4, &mut counters))
                        .instructions(scale.instructions(1300.0 * jit))
                        .mix(InstructionMix::balanced())
                        .pattern(AccessPattern::sequential(8))
                        .footprint(blocks[k * N + j])
                        .branch_mispredict_rate(0.03)
                        .dependency_rate(0.22)
                        .build();
                    b.add_task(
                        fwd_ty,
                        t,
                        vec![
                            RegionAccess::input(blocks[k * N + k]),
                            RegionAccess::inout(blocks[k * N + j]),
                        ],
                    );
                }
                Op::Bdiv(i, k) => {
                    let jit = 1.0 + (srng.next_f64() - 0.5) * 0.4;
                    let t = TraceSpec::builder()
                        .seed(seed(scale, 5, &mut counters))
                        .instructions(scale.instructions(1300.0 * jit))
                        .mix(InstructionMix::balanced())
                        .pattern(AccessPattern::sequential(8))
                        .footprint(blocks[i * N + k])
                        .branch_mispredict_rate(0.03)
                        .dependency_rate(0.22)
                        .build();
                    b.add_task(
                        bdiv_ty,
                        t,
                        vec![
                            RegionAccess::input(blocks[k * N + k]),
                            RegionAccess::inout(blocks[i * N + k]),
                        ],
                    );
                }
                Op::Bmod(i, j, k, fill) => {
                    if fill {
                        let t = TraceSpec::builder()
                            .seed(seed(scale, 1, &mut counters))
                            .instructions(scale.instructions(80.0))
                            .mix(InstructionMix::irregular_int())
                            .pattern(AccessPattern::sequential(8))
                            .footprint(blocks[i * N + j])
                            .build();
                        b.add_task(alloc_ty, t, vec![RegionAccess::output(blocks[i * N + j])]);
                    }
                    // Input dependence: block density varies 4.4x in
                    // *instruction count* (load imbalance the fast-forward
                    // formula absorbs via I_i); the access geometry is the
                    // type's code and stays fixed, keeping the per-type IPC
                    // spread in the band the paper reports.
                    let density = srng.next_log_uniform(0.5, 2.2);
                    let t = TraceSpec::builder()
                        .seed(seed(scale, 6, &mut counters))
                        .instructions(scale.instructions(1500.0 * density))
                        .mix(InstructionMix::balanced())
                        .pattern(AccessPattern::sequential(8))
                        .footprint(blocks[i * N + j])
                        .branch_mispredict_rate(0.04)
                        .dependency_rate(0.25)
                        .build();
                    b.add_task(
                        bmod_ty,
                        t,
                        vec![
                            RegionAccess::input(blocks[i * N + k]),
                            RegionAccess::input(blocks[k * N + j]),
                            RegionAccess::inout(blocks[i * N + j]),
                        ],
                    );
                }
            }
        }

        // Verification sweep: copy every final block, check it, reduce per
        // row, finalize.
        let mut copies: Vec<Option<MemRegion>> = vec![None; N * N];
        let mut cells: Vec<Option<MemRegion>> = vec![None; N * N];
        for i in 0..N {
            for j in 0..N {
                if !s.final_nonnull[i * N + j] {
                    continue;
                }
                let copy = alloc.alloc_lines(32 * 1024);
                let t = TraceSpec::builder()
                    .seed(seed(scale, 7, &mut counters))
                    .instructions(scale.instructions(600.0))
                    .mix(InstructionMix::memory_bound())
                    .pattern(AccessPattern::sequential(8))
                    .footprint(copy)
                    .build();
                b.add_task(
                    copy_ty,
                    t,
                    vec![RegionAccess::input(blocks[i * N + j]), RegionAccess::output(copy)],
                );
                copies[i * N + j] = Some(copy);
                let cell = alloc.alloc_lines(64);
                let t = TraceSpec::builder()
                    .seed(seed(scale, 8, &mut counters))
                    .instructions(scale.instructions(550.0))
                    .mix(InstructionMix::memory_bound())
                    .pattern(AccessPattern::sequential(8))
                    .footprint(copy)
                    .build();
                b.add_task(
                    check_ty,
                    t,
                    vec![RegionAccess::input(copy), RegionAccess::output(cell)],
                );
                cells[i * N + j] = Some(cell);
            }
        }
        let mut norms = Vec::with_capacity(N);
        for i in 0..N {
            let norm = alloc.alloc_lines(64);
            let mut acc = vec![RegionAccess::output(norm)];
            for j in 0..N {
                if let Some(cell) = cells[i * N + j] {
                    acc.push(RegionAccess::input(cell));
                }
            }
            let t = TraceSpec::builder()
                .seed(seed(scale, 9, &mut counters))
                .instructions(scale.instructions(300.0))
                .mix(InstructionMix::balanced())
                .pattern(AccessPattern::sequential(8))
                .footprint(norm)
                .build();
            b.add_task(diff_ty, t, acc);
            norms.push(norm);
        }
        let result = alloc.alloc_lines(64);
        let mut acc = vec![RegionAccess::output(result)];
        acc.extend(norms.iter().map(|&n| RegionAccess::input(n)));
        let t = TraceSpec::builder()
            .seed(seed(scale, 10, &mut counters))
            .instructions(scale.instructions(200.0))
            .mix(InstructionMix::balanced())
            .pattern(AccessPattern::sequential(8))
            .footprint(result)
            .build();
        b.add_task(fin_ty, t, acc);

        b.build()
    }
}

/// cholesky: 48-tile blocked Cholesky factorization — exactly the classic
/// potrf/trsm/syrk/gemm DAG, 4 types, 19,600 instances.
pub mod cholesky {
    use super::*;

    /// Table I row.
    pub const INFO: WorkloadInfo = WorkloadInfo {
        name: "cholesky",
        class: BenchClass::Application,
        task_types: 4,
        task_instances: 19600,
        property: "Decomposition of Hermitian positive-definite matrices",
    };

    /// Tiles per dimension: 48 + C(48,2)*2 + C(48,3) = 19,600.
    pub const N: usize = 48;

    /// Generates the workload.
    pub fn generate(scale: &ScaleConfig) -> Program {
        let mut b = Program::builder(INFO.name);
        let potrf_ty = b.add_type("potrf");
        let trsm_ty = b.add_type("trsm");
        let syrk_ty = b.add_type("syrk");
        let gemm_ty = b.add_type("gemm");
        let mut alloc = AddressAllocator::new();
        // Lower-triangular tile storage.
        let mut tiles = vec![MemRegion::empty(); N * N];
        for i in 0..N {
            for j in 0..=i {
                tiles[i * N + j] = alloc.alloc_lines(16 * 1024);
            }
        }
        let mut srng = Xoshiro256pp::seed_from_u64(0xC401E);
        let mut counters = [0u64; 4];
        let mk = |scale: &ScaleConfig,
                  ty: u32,
                  c: &mut [u64; 4],
                  base: f64,
                  fp: MemRegion,
                  srng: &mut Xoshiro256pp| {
            let jit = 1.0 + (srng.next_f64() - 0.5) * 0.03;
            let s = scale.instance_seed(INFO.name, ty, c[ty as usize]);
            c[ty as usize] += 1;
            TraceSpec::builder()
                .seed(s)
                .instructions(scale.instructions(base * jit))
                .mix(InstructionMix::compute_bound())
                .pattern(AccessPattern::sequential(8))
                .footprint(fp)
                .branch_mispredict_rate(0.008)
                .dependency_rate(0.12)
                .build()
        };
        for k in 0..N {
            let kk = tiles[k * N + k];
            let t = mk(scale, 0, &mut counters, 1200.0, kk, &mut srng);
            b.add_task(potrf_ty, t, vec![RegionAccess::inout(kk)]);
            for i in (k + 1)..N {
                let ik = tiles[i * N + k];
                let t = mk(scale, 1, &mut counters, 1350.0, ik, &mut srng);
                b.add_task(trsm_ty, t, vec![RegionAccess::input(kk), RegionAccess::inout(ik)]);
            }
            for i in (k + 1)..N {
                let ik = tiles[i * N + k];
                let ii = tiles[i * N + i];
                let t = mk(scale, 2, &mut counters, 1300.0, ii, &mut srng);
                b.add_task(syrk_ty, t, vec![RegionAccess::input(ik), RegionAccess::inout(ii)]);
                for j in (k + 1)..i {
                    let jk = tiles[j * N + k];
                    let ij = tiles[i * N + j];
                    let t = mk(scale, 3, &mut counters, 1500.0, ij, &mut srng);
                    b.add_task(
                        gemm_ty,
                        t,
                        vec![
                            RegionAccess::input(ik),
                            RegionAccess::input(jk),
                            RegionAccess::inout(ij),
                        ],
                    );
                }
            }
        }
        b.build()
    }
}

/// kmeans: Lloyd's algorithm — 6 task types over iterations of
/// assign/reduce/update/convergence plus initialization, 16,337 instances.
pub mod kmeans {
    use super::*;

    /// Table I row.
    pub const INFO: WorkloadInfo = WorkloadInfo {
        name: "kmeans",
        class: BenchClass::Application,
        task_types: 6,
        task_instances: 16337,
        property: "Clustering based on Lloyd's algorithm",
    };

    const BLOCKS: usize = 127;
    const ITERS: usize = 63;
    /// Extra init_points instances (chunked input loading) so the total
    /// matches Table I exactly: 1 + (127+81) + 63*(127+127+1+1) = 16,337.
    const EXTRA_INIT: usize = 81;

    /// Generates the workload.
    pub fn generate(scale: &ScaleConfig) -> Program {
        let mut b = Program::builder(INFO.name);
        let init_ctr_ty = b.add_type("init_centroids");
        let init_pts_ty = b.add_type("init_points");
        let assign_ty = b.add_type("assign");
        let partial_ty = b.add_type("partial_reduce");
        let update_ty = b.add_type("update_centroids");
        let conv_ty = b.add_type("check_convergence");
        let mut alloc = AddressAllocator::new();
        let centroids = alloc.alloc_lines(16 * 1024);
        let conv_flag = alloc.alloc_lines(64);
        let points: Vec<MemRegion> = alloc.alloc_array(BLOCKS, 128 * 1024);
        let labels: Vec<MemRegion> = alloc.alloc_array(BLOCKS, 8 * 1024);
        let partials: Vec<MemRegion> = alloc.alloc_array(BLOCKS, 4 * 1024);
        let mut counters = [0u64; 6];
        let seed = |scale: &ScaleConfig, ty: u32, c: &mut [u64; 6]| {
            let v = scale.instance_seed(INFO.name, ty, c[ty as usize]);
            c[ty as usize] += 1;
            v
        };

        let t = TraceSpec::builder()
            .seed(seed(scale, 0, &mut counters))
            .instructions(scale.instructions(500.0))
            .mix(InstructionMix::balanced())
            .pattern(AccessPattern::sequential(8))
            .footprint(centroids)
            .build();
        b.add_task(init_ctr_ty, t, vec![RegionAccess::output(centroids)]);

        for i in 0..(BLOCKS + EXTRA_INIT) {
            let fp = points[i % BLOCKS];
            let t = TraceSpec::builder()
                .seed(seed(scale, 1, &mut counters))
                .instructions(scale.instructions(700.0))
                .mix(InstructionMix::memory_bound())
                .pattern(AccessPattern::sequential(8))
                .footprint(fp)
                .build();
            // Only the first BLOCKS loads own a block outright; extras are
            // chunked readers of the same input (in-only, no deps created).
            let acc = if i < BLOCKS { vec![RegionAccess::output(points[i])] } else { vec![] };
            b.add_task(init_pts_ty, t, acc);
        }

        for _it in 0..ITERS {
            for bl in 0..BLOCKS {
                let t = TraceSpec::builder()
                    .seed(seed(scale, 2, &mut counters))
                    .instructions(scale.instructions(1500.0))
                    .mix(InstructionMix::balanced())
                    .pattern(AccessPattern::sequential(8))
                    .footprint(points[bl])
                    .branch_mispredict_rate(0.025)
                    .dependency_rate(0.15)
                    .build();
                b.add_task(
                    assign_ty,
                    t,
                    vec![
                        RegionAccess::input(points[bl]),
                        RegionAccess::input(centroids),
                        RegionAccess::output(labels[bl]),
                    ],
                );
            }
            for bl in 0..BLOCKS {
                let t = TraceSpec::builder()
                    .seed(seed(scale, 3, &mut counters))
                    .instructions(scale.instructions(600.0))
                    .mix(InstructionMix::balanced())
                    .pattern(AccessPattern::sequential(8))
                    .footprint(partials[bl])
                    .build();
                b.add_task(
                    partial_ty,
                    t,
                    vec![RegionAccess::input(labels[bl]), RegionAccess::output(partials[bl])],
                );
            }
            let mut acc = vec![RegionAccess::inout(centroids)];
            acc.extend(partials.iter().map(|&p| RegionAccess::input(p)));
            let t = TraceSpec::builder()
                .seed(seed(scale, 4, &mut counters))
                .instructions(scale.instructions(900.0))
                .mix(InstructionMix::balanced())
                .pattern(AccessPattern::sequential(8))
                .footprint(centroids)
                .build();
            b.add_task(update_ty, t, acc);
            let t = TraceSpec::builder()
                .seed(seed(scale, 5, &mut counters))
                .instructions(scale.instructions(150.0))
                .mix(InstructionMix::balanced())
                .pattern(AccessPattern::sequential(8))
                .footprint(conv_flag)
                .build();
            b.add_task(
                conv_ty,
                t,
                vec![RegionAccess::input(centroids), RegionAccess::inout(conv_flag)],
            );
        }
        b.build()
    }
}

/// knn: 800 queries × (22 distance blocks + 1 k-select merge) = 18,400
/// instances, 2 types.
pub mod knn {
    use super::*;

    /// Table I row.
    pub const INFO: WorkloadInfo = WorkloadInfo {
        name: "knn",
        class: BenchClass::Application,
        task_types: 2,
        task_instances: 18400,
        property: "Instance-based machine learning algorithm",
    };

    const QUERIES: usize = 800;
    const BLOCKS: usize = 22;

    /// Generates the workload.
    pub fn generate(scale: &ScaleConfig) -> Program {
        let mut b = Program::builder(INFO.name);
        let dist_ty = b.add_type("distances");
        let merge_ty = b.add_type("kselect");
        let mut alloc = AddressAllocator::new();
        let train: Vec<MemRegion> = alloc.alloc_array(BLOCKS, 512 * 1024);
        let mut srng = Xoshiro256pp::seed_from_u64(0x4A11);
        let mut dist_idx = 0u64;
        for q in 0..QUERIES {
            let mut scratch = Vec::with_capacity(BLOCKS);
            for &block in train.iter() {
                let out = alloc.alloc_lines(4 * 1024);
                let jit = 1.0 + (srng.next_f64() - 0.5) * 0.04;
                let t = TraceSpec::builder()
                    .seed(scale.instance_seed(INFO.name, 0, dist_idx))
                    .instructions(scale.instructions(1250.0 * jit))
                    .mix(InstructionMix::balanced())
                    .pattern(AccessPattern::sequential(16))
                    .footprint(block)
                    .branch_mispredict_rate(0.012)
                    .dependency_rate(0.12)
                    .build();
                b.add_task(dist_ty, t, vec![RegionAccess::output(out)]);
                scratch.push(out);
                dist_idx += 1;
            }
            let result = alloc.alloc_lines(1024);
            let mut acc = vec![RegionAccess::output(result)];
            acc.extend(scratch.iter().map(|&s| RegionAccess::input(s)));
            let t = TraceSpec::builder()
                .seed(scale.instance_seed(INFO.name, 1, q as u64))
                .instructions(scale.instructions(650.0))
                .mix(InstructionMix::irregular_int())
                .pattern(AccessPattern::Random)
                .footprint(result)
                .branch_mispredict_rate(0.04)
                .dependency_rate(0.25)
                .build();
            b.add_task(merge_ty, t, acc);
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(info: WorkloadInfo, p: &Program) {
        assert_eq!(p.num_types(), info.task_types, "{}: type count", info.name);
        assert_eq!(p.num_instances(), info.task_instances, "{}: instance count", info.name);
    }

    #[test]
    fn sparselu_matches_table1() {
        let p = sparselu::generate(&ScaleConfig::quick());
        check(sparselu::INFO, &p);
        // bmod must dominate the factorization work.
        let instr = p.instructions_per_type();
        let bmod_idx = p.types().iter().position(|t| t.name() == "bmod").unwrap();
        let total: u64 = instr.iter().sum();
        assert!(instr[bmod_idx] as f64 / total as f64 > 0.5, "bmod share too small");
    }

    #[test]
    fn sparselu_has_wide_size_spread() {
        let p = sparselu::generate(&ScaleConfig::new());
        let bmod_idx = p.types().iter().position(|t| t.name() == "bmod").unwrap() as u32;
        let sizes: Vec<u64> = p
            .instances()
            .iter()
            .filter(|i| i.type_id().0 == bmod_idx)
            .map(|i| i.instructions())
            .collect();
        let max = *sizes.iter().max().unwrap() as f64;
        let min = *sizes.iter().min().unwrap() as f64;
        assert!(max / min > 3.0, "bmod spread {max}/{min}");
    }

    #[test]
    fn cholesky_is_exactly_the_48_tile_dag() {
        let p = cholesky::generate(&ScaleConfig::quick());
        check(cholesky::INFO, &p);
        let n = cholesky::N;
        let per_type = p.instances_per_type();
        assert_eq!(per_type[0], n); // potrf
        assert_eq!(per_type[1], n * (n - 1) / 2); // trsm
        assert_eq!(per_type[2], n * (n - 1) / 2); // syrk
        assert_eq!(per_type[3], n * (n - 1) * (n - 2) / 6); // gemm

        // potrf(k+1) transitively depends on potrf(k): critical path spans k.
        assert!(p.graph().critical_path_len() >= n);
    }

    #[test]
    fn kmeans_matches_table1() {
        let p = kmeans::generate(&ScaleConfig::quick());
        check(kmeans::INFO, &p);
        // Iterations serialize through the centroids region.
        assert!(p.graph().critical_path_len() >= 63 * 2);
    }

    #[test]
    fn knn_matches_table1() {
        let p = knn::generate(&ScaleConfig::quick());
        check(knn::INFO, &p);
        let per_type = p.instances_per_type();
        assert_eq!(per_type, vec![17600, 800]);
        // merges wait for their 22 distance tasks but queries are parallel.
        assert_eq!(p.graph().critical_path_len(), 2);
    }
}
