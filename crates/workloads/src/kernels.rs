//! The nine numeric kernels of Table I (top block).
//!
//! Every generator reproduces its kernel's Table I row exactly — task-type
//! count, task-instance count — and its "Properties" column qualitatively:
//! access pattern, instruction mix, dependence structure and the degree of
//! per-instance imbalance. Structural randomness (e.g. spmv's row lengths)
//! uses a *fixed* structural seed so instance counts never depend on the
//! user's seed; per-instance trace content derives from
//! [`ScaleConfig::instance_seed`].

use crate::info::{BenchClass, WorkloadInfo};
use crate::layout::AddressAllocator;
use crate::scale::ScaleConfig;
use taskpoint_runtime::{Program, RegionAccess};
use taskpoint_stats::rng::Xoshiro256pp;
use taskpoint_trace::{AccessPattern, InstKind, InstructionMix, MemRegion, TraceSpec};

/// 2d-convolution: 16,384 independent tiles, strided row accesses.
pub mod conv2d {
    use super::*;

    /// Table I row.
    pub const INFO: WorkloadInfo = WorkloadInfo {
        name: "2d-convolution",
        class: BenchClass::Kernel,
        task_types: 1,
        task_instances: 16384,
        property: "Kernel: strided memory accesses",
    };

    /// Generates the workload.
    pub fn generate(scale: &ScaleConfig) -> Program {
        let mut b = Program::builder(INFO.name);
        let ty = b.add_type("conv_tile");
        let mut alloc = AddressAllocator::new();
        let mut srng = Xoshiro256pp::seed_from_u64(0x2DC0);
        for i in 0..INFO.task_instances as u64 {
            let input = alloc.alloc_lines(32 * 1024);
            let output = alloc.alloc_lines(8 * 1024);
            let jitter = 1.0 + (srng.next_f64() - 0.5) * 0.04;
            let trace = TraceSpec::builder()
                .seed(scale.instance_seed(INFO.name, 0, i))
                .instructions(scale.instructions(1450.0 * jitter))
                .mix(InstructionMix::balanced())
                .pattern(AccessPattern::strided(256, 4))
                .footprint(input)
                .branch_mispredict_rate(0.01)
                .dependency_rate(0.10)
                .build();
            b.add_task(ty, trace, vec![RegionAccess::output(output)]);
        }
        b.build()
    }
}

/// 3d-stencil: 1,637 tiles × 10 time steps with neighbour dependences.
pub mod stencil3d {
    use super::*;

    /// Table I row.
    pub const INFO: WorkloadInfo = WorkloadInfo {
        name: "3d-stencil",
        class: BenchClass::Kernel,
        task_types: 1,
        task_instances: 16370,
        property: "Kernel: strided memory accesses",
    };

    const TILES: usize = 1637;
    const STEPS: usize = 10;

    /// Generates the workload. Double-buffered like a real stencil code:
    /// each step reads three neighbouring tiles of the previous step's
    /// buffer and writes its tile of the other buffer, so tiles within a
    /// step are independent while steps form a wavefront.
    pub fn generate(scale: &ScaleConfig) -> Program {
        let mut b = Program::builder(INFO.name);
        let ty = b.add_type("stencil_step");
        let mut alloc = AddressAllocator::new();
        let buf_a = alloc.alloc_array(TILES, 48 * 1024);
        let buf_b = alloc.alloc_array(TILES, 48 * 1024);
        let mut srng = Xoshiro256pp::seed_from_u64(0x3D57);
        let mut idx = 0u64;
        for step in 0..STEPS {
            let (read, write): (&[_], &[_]) =
                if step % 2 == 0 { (&buf_a, &buf_b) } else { (&buf_b, &buf_a) };
            for t in 0..TILES {
                let left = read[(t + TILES - 1) % TILES];
                let right = read[(t + 1) % TILES];
                let jitter = 1.0 + (srng.next_f64() - 0.5) * 0.03;
                let trace = TraceSpec::builder()
                    .seed(scale.instance_seed(INFO.name, 0, idx))
                    .instructions(scale.instructions(1500.0 * jitter))
                    .mix(InstructionMix::balanced())
                    .pattern(AccessPattern::Stencil { planes: 3, plane_stride: 16 * 1024 })
                    .footprint(read[t])
                    .branch_mispredict_rate(0.008)
                    .dependency_rate(0.12)
                    .build();
                b.add_task(
                    ty,
                    trace,
                    vec![
                        RegionAccess::input(read[t]),
                        RegionAccess::input(left),
                        RegionAccess::input(right),
                        RegionAccess::output(write[t]),
                    ],
                );
                idx += 1;
            }
        }
        b.build()
    }
}

/// atomic-monte-carlo-dynamics: embarrassingly parallel compute tasks with a
/// shared atomic accumulator.
pub mod monte_carlo {
    use super::*;

    /// Table I row.
    pub const INFO: WorkloadInfo = WorkloadInfo {
        name: "atomic-monte-carlo-dynamics",
        class: BenchClass::Kernel,
        task_types: 1,
        task_instances: 16384,
        property: "Kernel: embarrassingly parallel",
    };

    /// Generates the workload.
    pub fn generate(scale: &ScaleConfig) -> Program {
        let mut b = Program::builder(INFO.name);
        let ty = b.add_type("mc_paths");
        let mut alloc = AddressAllocator::new();
        let accumulator = alloc.alloc_lines(64);
        let mut srng = Xoshiro256pp::seed_from_u64(0xA7C0);
        let mix = InstructionMix::from_weights(&[
            (InstKind::IntAlu, 0.20),
            (InstKind::FpAlu, 0.26),
            (InstKind::FpMul, 0.30),
            (InstKind::FpDiv, 0.02),
            (InstKind::Load, 0.11),
            (InstKind::Store, 0.04),
            (InstKind::Branch, 0.06),
            (InstKind::Atomic, 0.01),
        ]);
        for i in 0..INFO.task_instances as u64 {
            let state = alloc.alloc_lines(4 * 1024);
            // Monte-Carlo path counts vary slightly per task.
            let jitter = (1.0 + srng.next_normal(0.0, 0.05)).max(0.5);
            let trace = TraceSpec::builder()
                .seed(scale.instance_seed(INFO.name, 0, i))
                .instructions(scale.instructions(1400.0 * jitter))
                .mix(mix.clone())
                .pattern(AccessPattern::sequential(8))
                .footprint(state)
                .shared(accumulator)
                .branch_mispredict_rate(0.015)
                .dependency_rate(0.12)
                .build();
            b.add_task(ty, trace, vec![]);
        }
        b.build()
    }
}

/// dense-matrix-multiplication: 26³ = 17,576 tiled GEMM tasks chained over
/// the k dimension.
pub mod matmul {
    use super::*;

    /// Table I row.
    pub const INFO: WorkloadInfo = WorkloadInfo {
        name: "dense-matrix-multiplication",
        class: BenchClass::Kernel,
        task_types: 1,
        task_instances: 17576,
        property: "Kernel: high data reuse, compute bound",
    };

    const N: usize = 26;

    /// Generates the workload.
    pub fn generate(scale: &ScaleConfig) -> Program {
        let mut b = Program::builder(INFO.name);
        let ty = b.add_type("gemm");
        let mut alloc = AddressAllocator::new();
        let c_tiles = alloc.alloc_array(N * N, 8 * 1024);
        let mut srng = Xoshiro256pp::seed_from_u64(0xD6E5);
        let mut idx = 0u64;
        for _k in 0..N {
            for i in 0..N {
                for j in 0..N {
                    let jitter = 1.0 + (srng.next_f64() - 0.5) * 0.02;
                    let trace = TraceSpec::builder()
                        .seed(scale.instance_seed(INFO.name, 0, idx))
                        .instructions(scale.instructions(1550.0 * jitter))
                        .mix(InstructionMix::compute_bound())
                        .pattern(AccessPattern::sequential(8))
                        .footprint(c_tiles[i * N + j])
                        .branch_mispredict_rate(0.005)
                        .dependency_rate(0.10)
                        .build();
                    b.add_task(ty, trace, vec![RegionAccess::inout(c_tiles[i * N + j])]);
                    idx += 1;
                }
            }
        }
        b.build()
    }
}

/// histogram: independent scatter tasks hammering shared bins with atomics.
pub mod histogram {
    use super::*;

    /// Table I row.
    pub const INFO: WorkloadInfo = WorkloadInfo {
        name: "histogram",
        class: BenchClass::Kernel,
        task_types: 1,
        task_instances: 16384,
        property: "Kernel: atomic operations",
    };

    /// Generates the workload.
    pub fn generate(scale: &ScaleConfig) -> Program {
        let mut b = Program::builder(INFO.name);
        let ty = b.add_type("hist_chunk");
        let mut alloc = AddressAllocator::new();
        let bins = alloc.alloc_lines(32 * 1024);
        let mut srng = Xoshiro256pp::seed_from_u64(0x4157);
        for i in 0..INFO.task_instances as u64 {
            let chunk = alloc.alloc_lines(64 * 1024);
            let jitter = 1.0 + (srng.next_f64() - 0.5) * 0.03;
            let trace = TraceSpec::builder()
                .seed(scale.instance_seed(INFO.name, 0, i))
                .instructions(scale.instructions(1350.0 * jitter))
                .mix(InstructionMix::atomic_heavy())
                .pattern(AccessPattern::sequential(8))
                .footprint(chunk)
                .shared(bins)
                .branch_mispredict_rate(0.02)
                .dependency_rate(0.15)
                .build();
            b.add_task(ty, trace, vec![]);
        }
        b.build()
    }
}

/// n-body: 100 steps × 125 blocks of force-computation + position-update
/// tasks with neighbour (cell-list) dependences.
pub mod nbody {
    use super::*;

    /// Table I row.
    pub const INFO: WorkloadInfo = WorkloadInfo {
        name: "n-body",
        class: BenchClass::Kernel,
        task_types: 2,
        task_instances: 25000,
        property: "Kernel: irregular memory accesses",
    };

    const BLOCKS: usize = 125;
    const STEPS: usize = 100;

    /// Generates the workload.
    pub fn generate(scale: &ScaleConfig) -> Program {
        let mut b = Program::builder(INFO.name);
        let force_ty = b.add_type("compute_forces");
        let update_ty = b.add_type("update_positions");
        let mut alloc = AddressAllocator::new();
        let pos = alloc.alloc_array(BLOCKS, 32 * 1024);
        let frc = alloc.alloc_array(BLOCKS, 16 * 1024);
        let mut srng = Xoshiro256pp::seed_from_u64(0xB0D1);
        let mut force_idx = 0u64;
        let mut update_idx = 0u64;
        for _step in 0..STEPS {
            for t in 0..BLOCKS {
                let left = pos[(t + BLOCKS - 1) % BLOCKS];
                let right = pos[(t + 1) % BLOCKS];
                let jitter = 1.0 + (srng.next_f64() - 0.5) * 0.06;
                let trace = TraceSpec::builder()
                    .seed(scale.instance_seed(INFO.name, 0, force_idx))
                    .instructions(scale.instructions(1600.0 * jitter))
                    .mix(InstructionMix::balanced())
                    .pattern(AccessPattern::Gather { hot_probability: 0.6, hot_fraction: 0.2 })
                    .footprint(pos[t])
                    .branch_mispredict_rate(0.03)
                    .dependency_rate(0.20)
                    .build();
                b.add_task(
                    force_ty,
                    trace,
                    vec![
                        RegionAccess::input(pos[t]),
                        RegionAccess::input(left),
                        RegionAccess::input(right),
                        RegionAccess::output(frc[t]),
                    ],
                );
                force_idx += 1;
            }
            for t in 0..BLOCKS {
                let trace = TraceSpec::builder()
                    .seed(scale.instance_seed(INFO.name, 1, update_idx))
                    .instructions(scale.instructions(320.0))
                    .mix(InstructionMix::memory_bound())
                    .pattern(AccessPattern::sequential(8))
                    .footprint(pos[t])
                    .branch_mispredict_rate(0.01)
                    .dependency_rate(0.12)
                    .build();
                b.add_task(
                    update_ty,
                    trace,
                    vec![RegionAccess::input(frc[t]), RegionAccess::inout(pos[t])],
                );
                update_idx += 1;
            }
        }
        b.build()
    }
}

/// reduction: binary tree over 8,192 leaf chunks; parallelism collapses
/// towards the root (the paper's "parallelism decreases over time").
pub mod reduction {
    use super::*;

    /// Table I row.
    pub const INFO: WorkloadInfo = WorkloadInfo {
        name: "reduction",
        class: BenchClass::Kernel,
        task_types: 2,
        task_instances: 16384,
        property: "Kernel: parallelism decreases over time",
    };

    const LEAVES: usize = 8192;

    /// Generates the workload.
    pub fn generate(scale: &ScaleConfig) -> Program {
        let mut b = Program::builder(INFO.name);
        let leaf_ty = b.add_type("partial_sum");
        let combine_ty = b.add_type("combine");
        let mut alloc = AddressAllocator::new();
        let mut srng = Xoshiro256pp::seed_from_u64(0x4EDC);
        // Leaves.
        let mut frontier: Vec<MemRegion> = Vec::with_capacity(LEAVES);
        for i in 0..LEAVES as u64 {
            let chunk = alloc.alloc_lines(64 * 1024);
            let cell = alloc.alloc_lines(64);
            let jitter = 1.0 + (srng.next_f64() - 0.5) * 0.03;
            let trace = TraceSpec::builder()
                .seed(scale.instance_seed(INFO.name, 0, i))
                .instructions(scale.instructions(1200.0 * jitter))
                .mix(InstructionMix::memory_bound())
                .pattern(AccessPattern::sequential(8))
                .footprint(chunk)
                .branch_mispredict_rate(0.005)
                .dependency_rate(0.10)
                .build();
            b.add_task(leaf_ty, trace, vec![RegionAccess::output(cell)]);
            frontier.push(cell);
        }
        // Tree of combines.
        let mut combine_idx = 0u64;
        while frontier.len() > 1 {
            let mut next = Vec::with_capacity(frontier.len() / 2);
            for pair in frontier.chunks(2) {
                if pair.len() == 1 {
                    next.push(pair[0]);
                    continue;
                }
                let out = alloc.alloc_lines(64);
                let trace = TraceSpec::builder()
                    .seed(scale.instance_seed(INFO.name, 1, combine_idx))
                    .instructions(scale.instructions(400.0))
                    .mix(InstructionMix::balanced())
                    .pattern(AccessPattern::sequential(8))
                    .footprint(out)
                    .branch_mispredict_rate(0.005)
                    .dependency_rate(0.15)
                    .build();
                b.add_task(
                    combine_ty,
                    trace,
                    vec![
                        RegionAccess::input(pair[0]),
                        RegionAccess::input(pair[1]),
                        RegionAccess::output(out),
                    ],
                );
                combine_idx += 1;
                next.push(out);
            }
            frontier = next;
        }
        // Final write-out of the root (an 8,192nd instance of `combine`,
        // bringing the total to exactly 16,384).
        let result = alloc.alloc_lines(64);
        let trace = TraceSpec::builder()
            .seed(scale.instance_seed(INFO.name, 1, combine_idx))
            .instructions(scale.instructions(120.0))
            .mix(InstructionMix::balanced())
            .pattern(AccessPattern::sequential(8))
            .footprint(result)
            .build();
        b.add_task(
            combine_ty,
            trace,
            vec![RegionAccess::input(frontier[0]), RegionAccess::output(result)],
        );
        b.build()
    }
}

/// sparse-matrix-vector-multiplication: 1,024 row blocks with heavy-tailed
/// nnz counts — the paper's load-imbalance, memory-bound kernel.
pub mod spmv {
    use super::*;

    /// Table I row.
    pub const INFO: WorkloadInfo = WorkloadInfo {
        name: "sparse-matrix-vector-multiplication",
        class: BenchClass::Kernel,
        task_types: 1,
        task_instances: 1024,
        property: "Kernel: load imbalance, memory bound",
    };

    /// Generates the workload.
    pub fn generate(scale: &ScaleConfig) -> Program {
        let mut b = Program::builder(INFO.name);
        let ty = b.add_type("spmv_rows");
        let mut alloc = AddressAllocator::new();
        let mut srng = Xoshiro256pp::seed_from_u64(0x59A7);
        for i in 0..INFO.task_instances as u64 {
            // Row-block nnz is log-uniform over a 16x range: load imbalance
            // and per-instance miss-rate differences (input dependence).
            let nnz_factor = srng.next_log_uniform(0.25, 4.0);
            let instrs = scale.instructions(7000.0 * nnz_factor);
            let footprint_len = ((instrs as f64 * 24.0) as u64).clamp(4 * 1024, 4 * 1024 * 1024);
            let rows = alloc.alloc_lines(footprint_len);
            let y_block = alloc.alloc_lines(4 * 1024);
            let trace = TraceSpec::builder()
                .seed(scale.instance_seed(INFO.name, 0, i))
                .instructions(instrs)
                .mix(InstructionMix::memory_bound())
                .pattern(AccessPattern::Gather { hot_probability: 0.4, hot_fraction: 0.05 })
                .footprint(rows)
                .branch_mispredict_rate(0.02)
                .dependency_rate(0.18)
                .build();
            b.add_task(ty, trace, vec![RegionAccess::output(y_block)]);
        }
        b.build()
    }
}

/// vector-operation: perfectly regular streaming kernel, memory bound.
pub mod vecop {
    use super::*;

    /// Table I row.
    pub const INFO: WorkloadInfo = WorkloadInfo {
        name: "vector-operation",
        class: BenchClass::Kernel,
        task_types: 1,
        task_instances: 16400,
        property: "Kernel: regular, memory bound",
    };

    /// Generates the workload.
    pub fn generate(scale: &ScaleConfig) -> Program {
        let mut b = Program::builder(INFO.name);
        let ty = b.add_type("vec_chunk");
        let mut alloc = AddressAllocator::new();
        for i in 0..INFO.task_instances as u64 {
            let chunk = alloc.alloc_lines(256 * 1024);
            let trace = TraceSpec::builder()
                .seed(scale.instance_seed(INFO.name, 0, i))
                .instructions(scale.instructions(1490.0))
                .mix(InstructionMix::memory_bound())
                .pattern(AccessPattern::sequential(8))
                .footprint(chunk)
                .branch_mispredict_rate(0.003)
                .dependency_rate(0.08)
                .build();
            b.add_task(ty, trace, vec![RegionAccess::inout(chunk)]);
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(info: WorkloadInfo, p: &Program) {
        assert_eq!(p.num_types(), info.task_types, "{}: type count", info.name);
        assert_eq!(p.num_instances(), info.task_instances, "{}: instance count", info.name);
        assert_eq!(p.name(), info.name);
    }

    #[test]
    fn conv2d_matches_table1_and_is_independent() {
        let p = conv2d::generate(&ScaleConfig::quick());
        check(conv2d::INFO, &p);
        assert_eq!(p.graph().edge_count(), 0, "conv tiles are independent");
    }

    #[test]
    fn stencil_matches_table1_and_has_wavefront_deps() {
        let p = stencil3d::generate(&ScaleConfig::quick());
        check(stencil3d::INFO, &p);
        assert!(p.graph().edge_count() > 0);
        // Critical path spans the time steps.
        assert!(p.graph().critical_path_len() >= 10);
    }

    #[test]
    fn monte_carlo_matches_table1() {
        let p = monte_carlo::generate(&ScaleConfig::quick());
        check(monte_carlo::INFO, &p);
        assert_eq!(p.graph().edge_count(), 0, "embarrassingly parallel");
    }

    #[test]
    fn matmul_is_26_cubed_with_k_chains() {
        let p = matmul::generate(&ScaleConfig::quick());
        check(matmul::INFO, &p);
        assert_eq!(p.num_instances(), 26 * 26 * 26);
        // Each C tile is a 26-long inout chain.
        assert_eq!(p.graph().critical_path_len(), 26);
    }

    #[test]
    fn histogram_matches_table1() {
        let p = histogram::generate(&ScaleConfig::quick());
        check(histogram::INFO, &p);
        // Atomics must target the shared bins.
        let spec = p.instances()[0].trace();
        assert!(!spec.shared().is_empty());
    }

    #[test]
    fn nbody_types_alternate_per_step() {
        let p = nbody::generate(&ScaleConfig::quick());
        check(nbody::INFO, &p);
        let per_type = p.instances_per_type();
        assert_eq!(per_type, vec![12500, 12500]);
        // 100 steps of force->update chains.
        assert!(p.graph().critical_path_len() >= 200);
    }

    #[test]
    fn reduction_tree_structure() {
        let p = reduction::generate(&ScaleConfig::quick());
        check(reduction::INFO, &p);
        let per_type = p.instances_per_type();
        assert_eq!(per_type, vec![8192, 8192]);
        // Tree depth: leaf + 13 combine levels + final write.
        assert!(p.graph().critical_path_len() >= 14);
    }

    #[test]
    fn spmv_has_load_imbalance() {
        let p = spmv::generate(&ScaleConfig::new());
        check(spmv::INFO, &p);
        let sizes: Vec<u64> = p.instances().iter().map(|i| i.instructions()).collect();
        let max = *sizes.iter().max().unwrap();
        let min = *sizes.iter().min().unwrap();
        assert!(max as f64 / min as f64 > 8.0, "imbalance {max}/{min}");
    }

    #[test]
    fn vecop_is_perfectly_regular() {
        let p = vecop::generate(&ScaleConfig::new());
        check(vecop::INFO, &p);
        let first = p.instances()[0].instructions();
        assert!(p.instances().iter().all(|i| i.instructions() == first));
    }

    #[test]
    fn structure_is_independent_of_user_seed() {
        let a = spmv::generate(&ScaleConfig { seed: 1, ..ScaleConfig::quick() });
        let b = spmv::generate(&ScaleConfig { seed: 2, ..ScaleConfig::quick() });
        // Same structure (instruction counts are structural for spmv) ...
        let sa: Vec<u64> = a.instances().iter().map(|i| i.instructions()).collect();
        let sb: Vec<u64> = b.instances().iter().map(|i| i.instructions()).collect();
        assert_eq!(sa, sb);
        // ... but different trace content seeds.
        assert_ne!(a.instances()[0].trace().seed(), b.instances()[0].trace().seed());
    }
}
