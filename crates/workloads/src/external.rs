//! The `external` workload family: programs replayed from checked-in
//! `*.tptrace` fixture traces.
//!
//! Every other workload in this crate *generates* its task program
//! procedurally. The external family instead **ingests** foreign traces in
//! the Paraver/TaskSim-style `*.tptrace` format
//! ([`taskpoint_trace::ingest`], spec in `docs/TRACE_FORMATS.md`): the
//! checked-in fixtures under `crates/workloads/fixtures/` are parsed into
//! an [`IngestedTrace`], converted to a [`Program`] (types, instances,
//! recorded dependences), and paired with a `tasksim::RecordedTraces`
//! bundle carrying the recorded instruction streams.
//!
//! The fixtures themselves are deterministic: [`synthesize`] regenerates
//! each fixture's canonical text byte-for-byte (pinned by a golden test),
//! so the checked-in files, the recipe and the parser can never drift
//! apart. One fixture is stored in the text encoding, the other in the
//! binary encoding, exercising both parsers on every build.
//!
//! **Replay caveat:** the instances of an ingested program carry
//! pure-compute fallback specs (only the instruction *count* is
//! meaningful). Detailed simulation must use the recorded bundle —
//! `RecordedTraces::from_ingested` on the same [`IngestedTrace`] — which
//! the campaign layer wires automatically for `Benchmark::External` cells.

use taskpoint_runtime::{program_from_ingested, Program};
use taskpoint_trace::ingest::IngestedTrace;
use taskpoint_trace::{AccessPattern, Instruction, InstructionMix, MemRegion, TraceSpec};

use crate::info::{BenchClass, WorkloadInfo};

/// The checked-in external fixture traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ExternalWorkload {
    /// A Cholesky-like tile DAG (4 stages × 12 tasks over potrf/trsm/gemm
    /// types, 2 recorded threads), stored in the **text** encoding.
    DagMini,
    /// A two-stage software pipeline (produce → compress pairs chained
    /// through the compress stage, 2 recorded threads), stored in the
    /// **binary** encoding.
    PipelineMini,
}

/// Table-I-style metadata of the dag-mini fixture.
pub const DAG_MINI_INFO: WorkloadInfo = WorkloadInfo {
    name: "external-dag-mini",
    class: BenchClass::External,
    task_types: 3,
    task_instances: 48,
    property: "ingested tile DAG, 2 recorded threads, retired-before deps",
};

/// Table-I-style metadata of the pipeline-mini fixture.
pub const PIPELINE_MINI_INFO: WorkloadInfo = WorkloadInfo {
    name: "external-pipeline-mini",
    class: BenchClass::External,
    task_types: 2,
    task_instances: 40,
    property: "ingested 2-stage pipeline, binary encoding, chained deps",
};

impl ExternalWorkload {
    /// All external workloads.
    pub const ALL: [ExternalWorkload; 2] =
        [ExternalWorkload::DagMini, ExternalWorkload::PipelineMini];

    /// The workload's benchmark name.
    pub fn name(self) -> &'static str {
        self.info().name
    }

    /// Static metadata (fixture-derived counts, pinned by tests).
    pub fn info(self) -> WorkloadInfo {
        match self {
            ExternalWorkload::DagMini => DAG_MINI_INFO,
            ExternalWorkload::PipelineMini => PIPELINE_MINI_INFO,
        }
    }

    /// Looks an external workload up by name.
    pub fn by_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|w| w.name() == name)
    }

    /// The checked-in fixture bytes (text or binary `*.tptrace`).
    pub fn fixture_bytes(self) -> &'static [u8] {
        match self {
            ExternalWorkload::DagMini => include_bytes!("../fixtures/dag-mini.tptrace"),
            ExternalWorkload::PipelineMini => include_bytes!("../fixtures/pipeline-mini.tptraceb"),
        }
    }

    /// Parses the checked-in fixture.
    ///
    /// # Panics
    ///
    /// Panics if the fixture no longer parses — that means the repository
    /// itself is corrupt (the golden test pins fixture bytes to the
    /// [`synthesize`] recipe), not that user input was bad.
    pub fn ingest(self) -> IngestedTrace {
        IngestedTrace::parse(self.fixture_bytes())
            .unwrap_or_else(|e| panic!("checked-in fixture {} is invalid: {e}", self.name()))
    }

    /// The ingested program. Pair it with
    /// `tasksim::RecordedTraces::from_ingested` of the same
    /// [`ExternalWorkload::ingest`] result for detailed simulation (see
    /// module docs).
    pub fn generate(self) -> Program {
        program_from_ingested(self.name(), &self.ingest())
    }
}

/// Regenerates a fixture's canonical **text** encoding, byte for byte.
///
/// This is the recipe the checked-in fixtures were produced from (via
/// `trace-convert synth`); a golden test asserts the files match it. The
/// streams come from seeded [`TraceSpec`]s, so the output is a pure
/// function of this source file.
pub fn synthesize(workload: ExternalWorkload) -> String {
    match workload {
        ExternalWorkload::DagMini => synthesize_dag_mini(),
        ExternalWorkload::PipelineMini => synthesize_pipeline_mini(),
    }
}

/// Concrete stream of one synthetic fixture task.
fn fixture_stream(global_idx: u64, type_idx: u32, instructions: u64) -> Vec<Instruction> {
    let (mix, pattern) = match type_idx {
        0 => (InstructionMix::balanced(), AccessPattern::sequential(64)),
        1 => (InstructionMix::memory_bound(), AccessPattern::strided(128, 2)),
        _ => (InstructionMix::compute_bound(), AccessPattern::sequential(8)),
    };
    TraceSpec::builder()
        .seed(0xE17_0000 + global_idx)
        .code_seed(0xC0DE + type_idx as u64)
        .instructions(instructions)
        .mix(mix)
        .pattern(pattern)
        .footprint(MemRegion::new(0x2000_0000 + global_idx * 0x1_0000, 0x8000))
        .build()
        .iter()
        .collect()
}

/// Event-stream writer for the text encoding.
struct Emitter {
    out: String,
}

impl Emitter {
    fn new(comment: &str) -> Self {
        Self { out: format!("%tptrace 1\n# {comment}\n") }
    }

    fn declare(&mut self, id: u32, name: &str, branch_rate: f64, dep_rate: f64) {
        use std::fmt::Write as _;
        let _ = writeln!(self.out, "T:{id}:{name}:{branch_rate}:{dep_rate}");
    }

    fn begin(&mut self, thread: u32, task: u64, type_id: u32, deps: &[u64]) {
        use std::fmt::Write as _;
        let _ = write!(self.out, "B:{thread}:{task}:{type_id}");
        if !deps.is_empty() {
            let list: Vec<String> = deps.iter().map(u64::to_string).collect();
            let _ = write!(self.out, ":{}", list.join(","));
        }
        self.out.push('\n');
    }

    fn inst(&mut self, thread: u32, inst: Instruction) {
        use std::fmt::Write as _;
        if inst.kind.is_memory() {
            let _ = writeln!(self.out, "M:{thread}:{}:{:x}:{}", inst.kind, inst.addr, inst.size);
        } else {
            let _ = writeln!(self.out, "I:{thread}:{}", inst.kind);
        }
    }

    fn end(&mut self, thread: u32, task: u64) {
        use std::fmt::Write as _;
        let _ = writeln!(self.out, "E:{thread}:{task}");
    }

    /// Emits two whole tasks with their instruction streams interleaved in
    /// chunks across the two threads — the Paraver-timeline shape the
    /// parser must reassemble per thread.
    fn pair(&mut self, a: &FixtureTask, b: &FixtureTask) {
        self.begin(0, a.id, a.type_id, &a.deps);
        self.begin(1, b.id, b.type_id, &b.deps);
        const CHUNK: usize = 48;
        let mut ia = a.stream.iter();
        let mut ib = b.stream.iter();
        loop {
            let ca: Vec<_> = ia.by_ref().take(CHUNK).collect();
            let cb: Vec<_> = ib.by_ref().take(CHUNK).collect();
            if ca.is_empty() && cb.is_empty() {
                break;
            }
            for &i in &ca {
                self.inst(0, *i);
            }
            for &i in &cb {
                self.inst(1, *i);
            }
        }
        self.end(0, a.id);
        self.end(1, b.id);
    }

    fn solo(&mut self, thread: u32, t: &FixtureTask) {
        self.begin(thread, t.id, t.type_id, &t.deps);
        for &i in &t.stream {
            self.inst(thread, i);
        }
        self.end(thread, t.id);
    }
}

struct FixtureTask {
    id: u64,
    type_id: u32,
    deps: Vec<u64>,
    stream: Vec<Instruction>,
}

fn fixture_task(global_idx: u64, id: u64, type_id: u32, base: u64, deps: Vec<u64>) -> FixtureTask {
    let instructions = base + (global_idx * 37) % 97;
    FixtureTask { id, type_id, deps, stream: fixture_stream(global_idx, type_id, instructions) }
}

/// dag-mini: 4 stages of 12 tasks (potrf, trsm, then two gemm waves), each
/// stage-`s` task depending on one or two stage-`s-1` tasks. Task ids are
/// deliberately sparse (1000 + 10·i) to exercise dense remapping.
fn synthesize_dag_mini() -> String {
    let mut e = Emitter::new("external-dag-mini: Cholesky-like tile DAG on 2 threads");
    e.declare(0, "potrf", 0.01, 0.35);
    e.declare(1, "trsm", 0.02, 0.2);
    e.declare(2, "gemm", 0.005, 0.1);
    let id_of = |gidx: u64| 1000 + gidx * 10;
    let mut tasks = Vec::new();
    for stage in 0u64..4 {
        for slot in 0u64..12 {
            let gidx = stage * 12 + slot;
            let (type_id, base) = match stage {
                0 => (0u32, 320u64),
                1 => (1, 260),
                _ => (2, 200),
            };
            let deps = if stage == 0 {
                vec![]
            } else {
                let prev = (stage - 1) * 12;
                let mut d = vec![id_of(prev + slot)];
                if slot % 3 == 0 {
                    d.push(id_of(prev + (slot + 1) % 12));
                }
                d
            };
            tasks.push(fixture_task(gidx, id_of(gidx), type_id, base, deps));
        }
    }
    for pair in tasks.chunks(2) {
        e.pair(&pair[0], &pair[1]);
    }
    e.out
}

/// pipeline-mini: 20 produce/compress pairs; `compress_i` depends on
/// `produce_i` and on `compress_{i-1}`, so `produce_{i+1}` (thread 0) and
/// `compress_i` (thread 1) overlap — a classic 2-deep software pipeline.
fn synthesize_pipeline_mini() -> String {
    let mut e = Emitter::new("external-pipeline-mini: 2-stage pipeline on 2 threads");
    e.declare(0, "produce", 0.015, 0.25);
    e.declare(1, "compress", 0.04, 0.3);
    const PAIRS: u64 = 20;
    let produce_id = |i: u64| 2 * i;
    let compress_id = |i: u64| 2 * i + 1;
    let produce = |i: u64| fixture_task(i, produce_id(i), 0, 240, vec![]);
    let compress = |i: u64| {
        let mut deps = vec![produce_id(i)];
        if i > 0 {
            deps.push(compress_id(i - 1));
        }
        fixture_task(PAIRS + i, compress_id(i), 1, 300, deps)
    };
    // Software-pipelined emission: produce_0 runs alone, then produce_{i+1}
    // overlaps compress_i, and compress_{PAIRS-1} drains alone.
    e.solo(0, &produce(0));
    for i in 0..PAIRS - 1 {
        e.pair(&produce(i + 1), &compress(i));
    }
    e.solo(1, &compress(PAIRS - 1));
    e.out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_match_their_synthesis_recipes() {
        // Escape hatch for intentional recipe changes: regenerate the
        // checked-in files, then re-run without the variable.
        if std::env::var_os("TASKPOINT_REGEN_FIXTURES").is_some() {
            let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
            std::fs::write(dir.join("dag-mini.tptrace"), synthesize(ExternalWorkload::DagMini))
                .unwrap();
            let bin = IngestedTrace::parse_text(&synthesize(ExternalWorkload::PipelineMini))
                .unwrap()
                .to_binary();
            std::fs::write(dir.join("pipeline-mini.tptraceb"), bin).unwrap();
        }
        // Text fixture: byte-identical to the recipe output.
        let text = synthesize(ExternalWorkload::DagMini);
        assert_eq!(
            ExternalWorkload::DagMini.fixture_bytes(),
            text.as_bytes(),
            "dag-mini.tptrace drifted from its recipe (regenerate with `trace-convert synth`)"
        );
        // Binary fixture: byte-identical to the canonical binary encoding
        // of the recipe output.
        let bin = IngestedTrace::parse_text(&synthesize(ExternalWorkload::PipelineMini))
            .unwrap()
            .to_binary();
        assert_eq!(
            ExternalWorkload::PipelineMini.fixture_bytes(),
            &bin[..],
            "pipeline-mini.tptraceb drifted from its recipe"
        );
    }

    #[test]
    fn info_matches_the_parsed_fixtures() {
        for w in ExternalWorkload::ALL {
            let trace = w.ingest();
            let info = w.info();
            assert_eq!(trace.num_types(), info.task_types, "{}", w.name());
            assert_eq!(trace.num_tasks(), info.task_instances, "{}", w.name());
            assert_eq!(trace.threads(), 2, "{}", w.name());
            assert_eq!(ExternalWorkload::by_name(w.name()), Some(w));
        }
    }

    #[test]
    fn generated_programs_mirror_the_traces() {
        for w in ExternalWorkload::ALL {
            let trace = w.ingest();
            let p = w.generate();
            assert_eq!(p.name(), w.name());
            assert_eq!(p.num_types(), trace.num_types());
            assert_eq!(p.num_instances(), trace.num_tasks());
            assert_eq!(p.total_instructions(), trace.total_instructions());
            assert!(p.graph().edge_count() > 0, "{}: recorded deps became edges", w.name());
        }
    }

    #[test]
    fn dag_mini_has_the_documented_dependence_shape() {
        let p = ExternalWorkload::DagMini.generate();
        use taskpoint_runtime::TaskInstanceId;
        // Stage 0 has no predecessors; later stages have 1-2.
        for i in 0..12 {
            assert!(p.graph().predecessors(TaskInstanceId(i)).is_empty());
        }
        for i in 12..48u64 {
            let preds = p.graph().predecessors(TaskInstanceId(i)).len();
            assert!((1..=2).contains(&preds), "task {i} has {preds} preds");
        }
    }
}
