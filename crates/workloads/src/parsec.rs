//! The six task-based PARSEC ports of Table I (bottom block):
//! blackscholes, bodytrack, canneal, dedup, freqmine and swaptions.
//!
//! dedup and freqmine deliberately reproduce the pathologies the paper
//! analyzes: dedup's dominant task type covers 99.9% of the dynamic
//! instructions with input-dependent instance sizes spanning 3.5–25.1
//! size units; freqmine's dominant type covers ~93% with instance sizes
//! spanning more than four orders of magnitude and divergent control flow
//! (the nested-if construct the paper found in the source).

use crate::info::{BenchClass, WorkloadInfo};
use crate::layout::AddressAllocator;
use crate::scale::ScaleConfig;
use taskpoint_runtime::{Program, RegionAccess};
use taskpoint_stats::rng::Xoshiro256pp;
use taskpoint_trace::{AccessPattern, InstructionMix, MemRegion, TraceSpec};

/// blackscholes: 50 frames × (489 pricing blocks + 1 aggregate) = 24,500.
pub mod blackscholes {
    use super::*;

    /// Table I row.
    pub const INFO: WorkloadInfo = WorkloadInfo {
        name: "blackscholes",
        class: BenchClass::Parsec,
        task_types: 2,
        task_instances: 24500,
        property: "Option price calculation",
    };

    const FRAMES: usize = 50;
    const BLOCKS: usize = 489;

    /// Generates the workload.
    pub fn generate(scale: &ScaleConfig) -> Program {
        let mut b = Program::builder(INFO.name);
        let price_ty = b.add_type("price_options");
        let agg_ty = b.add_type("aggregate");
        let mut alloc = AddressAllocator::new();
        let mut srng = Xoshiro256pp::seed_from_u64(0xB5C0);
        let mut price_idx = 0u64;
        for f in 0..FRAMES {
            let mut outs = Vec::with_capacity(BLOCKS);
            for _bl in 0..BLOCKS {
                let options = alloc.alloc_lines(16 * 1024);
                let out = alloc.alloc_lines(2 * 1024);
                let jit = 1.0 + (srng.next_f64() - 0.5) * 0.03;
                let t = TraceSpec::builder()
                    .seed(scale.instance_seed(INFO.name, 0, price_idx))
                    .instructions(scale.instructions(1000.0 * jit))
                    .mix(InstructionMix::compute_bound())
                    .pattern(AccessPattern::sequential(8))
                    .footprint(options)
                    .branch_mispredict_rate(0.006)
                    .dependency_rate(0.10)
                    .build();
                b.add_task(price_ty, t, vec![RegionAccess::output(out)]);
                outs.push(out);
                price_idx += 1;
            }
            let result = alloc.alloc_lines(1024);
            let mut acc = vec![RegionAccess::output(result)];
            acc.extend(outs.iter().map(|&o| RegionAccess::input(o)));
            let t = TraceSpec::builder()
                .seed(scale.instance_seed(INFO.name, 1, f as u64))
                .instructions(scale.instructions(500.0))
                .mix(InstructionMix::balanced())
                .pattern(AccessPattern::sequential(8))
                .footprint(result)
                .build();
            b.add_task(agg_ty, t, acc);
        }
        b.build()
    }
}

/// bodytrack: 61 frames through a 7-stage per-frame pipeline (plus a few
/// warm-up instances of the first stage) = 21,439 instances.
pub mod bodytrack {
    use super::*;

    /// Table I row.
    pub const INFO: WorkloadInfo = WorkloadInfo {
        name: "bodytrack",
        class: BenchClass::Parsec,
        task_types: 7,
        task_instances: 21439,
        property: "Human body tracking with multiple cameras",
    };

    const FRAMES: usize = 61;
    /// Blocks per stage within a frame.
    const STAGE_BLOCKS: [usize; 7] = [80, 80, 80, 60, 30, 20, 1];
    /// Extra first-stage instances (camera warm-up frames) to land exactly
    /// on Table I: 61 * 351 + 28 = 21,439.
    const EXTRA_STAGE1: usize = 28;

    /// Generates the workload.
    pub fn generate(scale: &ScaleConfig) -> Program {
        let mut b = Program::builder(INFO.name);
        let names = [
            "edge_detect",
            "gauss_smooth",
            "gradient",
            "likelihood",
            "resample",
            "update_model",
            "anneal_step",
        ];
        let types: Vec<_> = names.iter().map(|n| b.add_type(*n)).collect();
        let mut alloc = AddressAllocator::new();
        let model_state = alloc.alloc_lines(64 * 1024);
        let mut srng = Xoshiro256pp::seed_from_u64(0xB0D7);
        let mut counters = [0u64; 7];
        let bases = [1100.0, 900.0, 950.0, 1400.0, 700.0, 800.0, 1200.0];

        // Warm-up stage-1 instances (independent).
        for _ in 0..EXTRA_STAGE1 {
            let fp = alloc.alloc_lines(32 * 1024);
            let t = TraceSpec::builder()
                .seed(scale.instance_seed(INFO.name, 0, counters[0]))
                .instructions(scale.instructions(bases[0]))
                .mix(InstructionMix::balanced())
                .pattern(AccessPattern::strided(128, 2))
                .footprint(fp)
                .build();
            counters[0] += 1;
            b.add_task(types[0], t, vec![]);
        }

        for _f in 0..FRAMES {
            let mut prev_outs: Vec<MemRegion> = vec![model_state];
            for (s, &blocks) in STAGE_BLOCKS.iter().enumerate() {
                let mut outs = Vec::with_capacity(blocks);
                for bl in 0..blocks {
                    let fp = alloc.alloc_lines(32 * 1024);
                    let out = alloc.alloc_lines(4 * 1024);
                    let jit = 1.0 + (srng.next_f64() - 0.5) * 0.08;
                    let t = TraceSpec::builder()
                        .seed(scale.instance_seed(INFO.name, s as u32, counters[s]))
                        .instructions(scale.instructions(bases[s] * jit))
                        .mix(if s >= 3 {
                            InstructionMix::irregular_int()
                        } else {
                            InstructionMix::balanced()
                        })
                        .pattern(if s >= 3 {
                            AccessPattern::Random
                        } else {
                            AccessPattern::strided(128, 2)
                        })
                        .footprint(fp)
                        .branch_mispredict_rate(if s >= 3 { 0.035 } else { 0.01 })
                        .dependency_rate(0.18)
                        .build();
                    counters[s] += 1;
                    // Each block reads 1-2 outputs of the previous stage.
                    let mut acc = vec![RegionAccess::output(out)];
                    let src = bl * prev_outs.len() / blocks.max(1);
                    acc.push(RegionAccess::input(prev_outs[src % prev_outs.len()]));
                    let is_last_stage = s == STAGE_BLOCKS.len() - 1;
                    if is_last_stage {
                        // The per-frame anneal step updates the tracking
                        // model, serializing frames.
                        acc.push(RegionAccess::inout(model_state));
                    }
                    b.add_task(types[s], t, acc);
                    outs.push(out);
                }
                prev_outs = outs;
            }
        }
        b.build()
    }
}

/// canneal: 16,384 independent swap batches over one big shared netlist —
/// random remote accesses, cache unfriendly.
pub mod canneal {
    use super::*;

    /// Table I row.
    pub const INFO: WorkloadInfo = WorkloadInfo {
        name: "canneal",
        class: BenchClass::Parsec,
        task_types: 1,
        task_instances: 16384,
        property: "Cache-aware simulated annealing",
    };

    /// Generates the workload.
    pub fn generate(scale: &ScaleConfig) -> Program {
        let mut b = Program::builder(INFO.name);
        let ty = b.add_type("swap_batch");
        let mut alloc = AddressAllocator::new();
        // One netlist shared by every task: random accesses to it from all
        // cores produce the coherence traffic canneal is famous for.
        let netlist = alloc.alloc_lines(8 * 1024 * 1024);
        let locks = alloc.alloc_lines(4 * 1024);
        let mix = InstructionMix::from_weights(&[
            (taskpoint_trace::InstKind::IntAlu, 0.36),
            (taskpoint_trace::InstKind::Load, 0.28),
            (taskpoint_trace::InstKind::Store, 0.08),
            (taskpoint_trace::InstKind::Branch, 0.16),
            (taskpoint_trace::InstKind::Atomic, 0.02),
            (taskpoint_trace::InstKind::FpAlu, 0.10),
        ]);
        let mut srng = Xoshiro256pp::seed_from_u64(0xCA77);
        for i in 0..INFO.task_instances as u64 {
            let jit = 1.0 + (srng.next_f64() - 0.5) * 0.05;
            let t = TraceSpec::builder()
                .seed(scale.instance_seed(INFO.name, 0, i))
                .instructions(scale.instructions(1450.0 * jit))
                .mix(mix.clone())
                .pattern(AccessPattern::Random)
                .footprint(netlist)
                .shared(locks)
                .branch_mispredict_rate(0.04)
                .dependency_rate(0.25)
                .build();
            b.add_task(ty, t, vec![]);
        }
        b.build()
    }
}

/// dedup: 3,934 segments through the chunk → hash → compress → write
/// pipeline (+2 warm-up chunk tasks) = 15,738; compress carries 99.9% of
/// the instructions with a 7× input-dependent size spread.
pub mod dedup {
    use super::*;

    /// Table I row.
    pub const INFO: WorkloadInfo = WorkloadInfo {
        name: "dedup",
        class: BenchClass::Parsec,
        task_types: 4,
        task_instances: 15738,
        property: "Deduplication: combination of global and local compression",
    };

    const SEGMENTS: usize = 3934;
    const EXTRA_CHUNK: usize = 2;

    /// Generates the workload.
    pub fn generate(scale: &ScaleConfig) -> Program {
        let mut b = Program::builder(INFO.name);
        let chunk_ty = b.add_type("chunk");
        let hash_ty = b.add_type("hash_dedup");
        let compress_ty = b.add_type("compress");
        let write_ty = b.add_type("write_out");
        let mut alloc = AddressAllocator::new();
        let output_file = alloc.alloc_lines(64 * 1024);
        let mut srng = Xoshiro256pp::seed_from_u64(0xDED0);
        let mut counters = [0u64; 4];
        let seed = |scale: &ScaleConfig, ty: u32, c: &mut [u64; 4]| {
            let v = scale.instance_seed(INFO.name, ty, c[ty as usize]);
            c[ty as usize] += 1;
            v
        };

        for _ in 0..EXTRA_CHUNK {
            let fp = alloc.alloc_lines(8 * 1024);
            let t = TraceSpec::builder()
                .seed(seed(scale, 0, &mut counters))
                .instructions(scale.instructions(4.0))
                .mix(InstructionMix::irregular_int())
                .pattern(AccessPattern::sequential(8))
                .footprint(fp)
                .build();
            b.add_task(chunk_ty, t, vec![]);
        }

        for _s in 0..SEGMENTS {
            let seg = alloc.alloc_lines(16 * 1024);
            let hashed = alloc.alloc_lines(4 * 1024);
            let compressed = alloc.alloc_lines(16 * 1024);
            // chunk
            let t = TraceSpec::builder()
                .seed(seed(scale, 0, &mut counters))
                .instructions(scale.instructions(4.0))
                .mix(InstructionMix::irregular_int())
                .pattern(AccessPattern::sequential(8))
                .footprint(seg)
                .build();
            b.add_task(chunk_ty, t, vec![RegionAccess::output(seg)]);
            // hash / global dedup
            let t = TraceSpec::builder()
                .seed(seed(scale, 1, &mut counters))
                .instructions(scale.instructions(5.0))
                .mix(InstructionMix::irregular_int())
                .pattern(AccessPattern::Random)
                .footprint(seg)
                .build();
            b.add_task(hash_ty, t, vec![RegionAccess::input(seg), RegionAccess::output(hashed)]);
            // compress: the dominant, input-dependent stage. Size spread is
            // uniform over [350, 2510] — a 7.2x ratio matching the paper's
            // 3.5M..25.1M instruction range scaled down.
            let size = 350.0 + srng.next_f64() * (2510.0 - 350.0);
            let instrs = scale.instructions(size);
            // Footprint tracks the chunk's compressibility: bigger chunks
            // stream more data and miss more — input-dependent IPC.
            let window = ((instrs as f64 * 40.0) as u64).clamp(4 * 1024, 2 * 1024 * 1024);
            let window_fp = alloc.alloc_lines(window);
            let t = TraceSpec::builder()
                .seed(seed(scale, 2, &mut counters))
                .instructions(instrs)
                .mix(InstructionMix::irregular_int())
                .pattern(AccessPattern::Gather { hot_probability: 0.55, hot_fraction: 0.08 })
                .footprint(window_fp)
                .branch_mispredict_rate(0.05)
                .dependency_rate(0.30)
                .build();
            b.add_task(
                compress_ty,
                t,
                vec![RegionAccess::input(hashed), RegionAccess::output(compressed)],
            );
            // ordered write-out (serializes the pipeline tail)
            let t = TraceSpec::builder()
                .seed(seed(scale, 3, &mut counters))
                .instructions(scale.instructions(3.0))
                .mix(InstructionMix::memory_bound())
                .pattern(AccessPattern::sequential(8))
                .footprint(output_file)
                .build();
            b.add_task(
                write_ty,
                t,
                vec![RegionAccess::input(compressed), RegionAccess::inout(output_file)],
            );
        }
        b.build()
    }
}

/// freqmine: FP-growth — 1,932 instances across 7 types; the mining type
/// holds ~93% of the instructions with sizes spanning 4+ orders of
/// magnitude and divergent control flow.
pub mod freqmine {
    use super::*;

    /// Table I row.
    pub const INFO: WorkloadInfo = WorkloadInfo {
        name: "freqmine",
        class: BenchClass::Parsec,
        task_types: 7,
        task_instances: 1932,
        property: "Frequent Pattern Growth method for Frequent Item Mining",
    };

    const INSERT_BATCHES: usize = 50;
    const SORTS: usize = 25;
    const BUILDS: usize = 25;
    const MINES: usize = 1800;
    const PRUNES: usize = 25;
    const AGGS: usize = 6;

    /// Generates the workload.
    pub fn generate(scale: &ScaleConfig) -> Program {
        let mut b = Program::builder(INFO.name);
        let header_ty = b.add_type("build_header");
        let insert_ty = b.add_type("insert_batch");
        let sort_ty = b.add_type("sort_items");
        let build_ty = b.add_type("build_tree");
        let mine_ty = b.add_type("mine_subtree");
        let prune_ty = b.add_type("prune");
        let agg_ty = b.add_type("aggregate");
        let mut alloc = AddressAllocator::new();
        let header = alloc.alloc_lines(64 * 1024);
        let tree = alloc.alloc_lines(4 * 1024 * 1024);
        let mut srng = Xoshiro256pp::seed_from_u64(0xF4E9);

        // build_header (1)
        let t = TraceSpec::builder()
            .seed(scale.instance_seed(INFO.name, 0, 0))
            .instructions(scale.instructions(800.0))
            .mix(InstructionMix::irregular_int())
            .pattern(AccessPattern::sequential(8))
            .footprint(header)
            .build();
        b.add_task(header_ty, t, vec![RegionAccess::output(header)]);

        // insert batches (50) — all inout the tree: a serial build chain.
        for i in 0..INSERT_BATCHES as u64 {
            let t = TraceSpec::builder()
                .seed(scale.instance_seed(INFO.name, 1, i))
                .instructions(scale.instructions(600.0))
                .mix(InstructionMix::irregular_int())
                .pattern(AccessPattern::PointerChase)
                .footprint(tree)
                .branch_mispredict_rate(0.05)
                .dependency_rate(0.30)
                .build();
            b.add_task(insert_ty, t, vec![RegionAccess::input(header), RegionAccess::inout(tree)]);
        }
        // sort_items (25)
        let mut sort_outs = Vec::new();
        for i in 0..SORTS as u64 {
            let out = alloc.alloc_lines(16 * 1024);
            let t = TraceSpec::builder()
                .seed(scale.instance_seed(INFO.name, 2, i))
                .instructions(scale.instructions(500.0))
                .mix(InstructionMix::irregular_int())
                .pattern(AccessPattern::Random)
                .footprint(out)
                .build();
            b.add_task(sort_ty, t, vec![RegionAccess::input(tree), RegionAccess::output(out)]);
            sort_outs.push(out);
        }
        // build_tree (25) — refine the tree from sorted batches.
        for i in 0..BUILDS as u64 {
            let t = TraceSpec::builder()
                .seed(scale.instance_seed(INFO.name, 3, i))
                .instructions(scale.instructions(700.0))
                .mix(InstructionMix::irregular_int())
                .pattern(AccessPattern::PointerChase)
                .footprint(tree)
                .branch_mispredict_rate(0.05)
                .dependency_rate(0.30)
                .build();
            b.add_task(
                build_ty,
                t,
                vec![
                    RegionAccess::input(sort_outs[i as usize % sort_outs.len()]),
                    RegionAccess::inout(tree),
                ],
            );
        }
        // mine_subtree (1800): THE dominant type. Log-uniform sizes over
        // 4.5 decades — the scaled version of the paper's 490..11,000,000
        // instruction range — plus heavy control-flow divergence. Every
        // mine task chases pointers through the SAME FP-tree (that is what
        // FP-growth does): short mines walk a hot prefix of the shared
        // chain, deep mines reach cold regions, giving the moderate
        // size-correlated IPC spread of the paper's Fig. 5 while the
        // 4-decade *length* imbalance stays in the instruction counts.
        let mut mine_outs = Vec::new();
        for i in 0..MINES as u64 {
            let size = srng.next_log_uniform(4.9, 110_000.0);
            let instrs = scale.instructions(size);
            let out = alloc.alloc_lines(1024);
            let t = TraceSpec::builder()
                .seed(scale.instance_seed(INFO.name, 4, i))
                .instructions(instrs)
                .mix(InstructionMix::irregular_int())
                .pattern(AccessPattern::PointerChase)
                .footprint(tree)
                .branch_mispredict_rate(0.08)
                .dependency_rate(0.35)
                .build();
            b.add_task(mine_ty, t, vec![RegionAccess::input(tree), RegionAccess::output(out)]);
            mine_outs.push(out);
        }
        // prune (25)
        let mut prune_outs = Vec::new();
        for i in 0..PRUNES as u64 {
            let out = alloc.alloc_lines(4 * 1024);
            let mut acc = vec![RegionAccess::output(out)];
            // Each prune funnels a slice of mine outputs.
            let lo = i as usize * MINES / PRUNES;
            let hi = (i as usize + 1) * MINES / PRUNES;
            acc.extend(mine_outs[lo..hi].iter().map(|&m| RegionAccess::input(m)));
            let t = TraceSpec::builder()
                .seed(scale.instance_seed(INFO.name, 5, i))
                .instructions(scale.instructions(400.0))
                .mix(InstructionMix::irregular_int())
                .pattern(AccessPattern::Random)
                .footprint(out)
                .build();
            b.add_task(prune_ty, t, acc);
            prune_outs.push(out);
        }
        // aggregate (6)
        for i in 0..AGGS as u64 {
            let out = alloc.alloc_lines(1024);
            let mut acc = vec![RegionAccess::output(out)];
            let lo = i as usize * PRUNES / AGGS;
            let hi = (i as usize + 1) * PRUNES / AGGS;
            acc.extend(prune_outs[lo..hi].iter().map(|&p| RegionAccess::input(p)));
            let t = TraceSpec::builder()
                .seed(scale.instance_seed(INFO.name, 6, i))
                .instructions(scale.instructions(300.0))
                .mix(InstructionMix::balanced())
                .pattern(AccessPattern::sequential(8))
                .footprint(out)
                .build();
            b.add_task(agg_ty, t, acc);
        }
        b.build()
    }
}

/// swaptions: 16,384 independent Monte-Carlo pricing tasks — the most
/// regular PARSEC member.
pub mod swaptions {
    use super::*;

    /// Table I row.
    pub const INFO: WorkloadInfo = WorkloadInfo {
        name: "swaptions",
        class: BenchClass::Parsec,
        task_types: 1,
        task_instances: 16384,
        property: "Monte-Carlo simulation to calculate swaption prices",
    };

    /// Generates the workload.
    pub fn generate(scale: &ScaleConfig) -> Program {
        let mut b = Program::builder(INFO.name);
        let ty = b.add_type("price_swaption");
        let mut alloc = AddressAllocator::new();
        let mut srng = Xoshiro256pp::seed_from_u64(0x50AF);
        for i in 0..INFO.task_instances as u64 {
            let fp = alloc.alloc_lines(2 * 1024);
            let jit = 1.0 + (srng.next_f64() - 0.5) * 0.01;
            let t = TraceSpec::builder()
                .seed(scale.instance_seed(INFO.name, 0, i))
                .instructions(scale.instructions(1790.0 * jit))
                .mix(InstructionMix::compute_bound())
                .pattern(AccessPattern::sequential(8))
                .footprint(fp)
                .branch_mispredict_rate(0.005)
                .dependency_rate(0.10)
                .build();
            b.add_task(ty, t, vec![]);
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(info: WorkloadInfo, p: &Program) {
        assert_eq!(p.num_types(), info.task_types, "{}: type count", info.name);
        assert_eq!(p.num_instances(), info.task_instances, "{}: instance count", info.name);
    }

    #[test]
    fn blackscholes_matches_table1() {
        let p = blackscholes::generate(&ScaleConfig::quick());
        check(blackscholes::INFO, &p);
        assert_eq!(p.instances_per_type(), vec![24450, 50]);
    }

    #[test]
    fn bodytrack_matches_table1() {
        let p = bodytrack::generate(&ScaleConfig::quick());
        check(bodytrack::INFO, &p);
        // Frames serialize through the model state.
        assert!(p.graph().critical_path_len() >= 61);
    }

    #[test]
    fn canneal_shares_one_netlist() {
        let p = canneal::generate(&ScaleConfig::quick());
        check(canneal::INFO, &p);
        let a = p.instances()[0].trace().footprint();
        let z = p.instances()[16383].trace().footprint();
        assert_eq!(a, z, "all swap batches walk the same netlist");
    }

    #[test]
    fn dedup_dominant_type_has_999_permille_of_instructions() {
        let p = dedup::generate(&ScaleConfig::new());
        check(dedup::INFO, &p);
        let per_type = p.instructions_per_type();
        let total: u64 = per_type.iter().sum();
        let compress_idx = p.types().iter().position(|t| t.name() == "compress").unwrap();
        let share = per_type[compress_idx] as f64 / total as f64;
        assert!(share > 0.99, "compress share {share}");
        // 7x size spread inside the dominant type.
        let sizes: Vec<u64> = p
            .instances()
            .iter()
            .filter(|i| i.type_id().0 == compress_idx as u32)
            .map(|i| i.instructions())
            .collect();
        let max = *sizes.iter().max().unwrap() as f64;
        let min = *sizes.iter().min().unwrap() as f64;
        assert!(max / min > 5.0, "spread {max}/{min}");
    }

    #[test]
    fn freqmine_dominant_type_matches_paper_pathology() {
        let p = freqmine::generate(&ScaleConfig::new());
        check(freqmine::INFO, &p);
        let per_type = p.instructions_per_type();
        let total: u64 = per_type.iter().sum();
        let mine_idx = p.types().iter().position(|t| t.name() == "mine_subtree").unwrap();
        let share = per_type[mine_idx] as f64 / total as f64;
        assert!(share > 0.85, "mine share {share} (paper: 93%)");
        let sizes: Vec<u64> = p
            .instances()
            .iter()
            .filter(|i| i.type_id().0 == mine_idx as u32)
            .map(|i| i.instructions())
            .collect();
        let max = *sizes.iter().max().unwrap() as f64;
        let min = *sizes.iter().min().unwrap() as f64;
        assert!(max / min > 1000.0, "4-decade size spread, got {max}/{min}");
    }

    #[test]
    fn swaptions_is_regular() {
        let p = swaptions::generate(&ScaleConfig::new());
        check(swaptions::INFO, &p);
        let sizes: Vec<u64> = p.instances().iter().map(|i| i.instructions()).collect();
        let max = *sizes.iter().max().unwrap() as f64;
        let min = *sizes.iter().min().unwrap() as f64;
        assert!(max / min < 1.05, "swaptions must be near-uniform");
        assert_eq!(p.graph().edge_count(), 0);
    }

    #[test]
    fn dedup_write_stage_serializes() {
        let p = dedup::generate(&ScaleConfig::quick());
        // The inout(output_file) chain makes the critical path at least as
        // long as the number of segments.
        assert!(p.graph().critical_path_len() >= 3934);
    }
}
