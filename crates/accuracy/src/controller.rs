//! The confidence-driven adaptive mode controller.
//!
//! Unlike the base TaskPoint controller — a *global* four-phase machine
//! that samples every observed type until all histories fill, then
//! fast-forwards everything — the adaptive controller makes the
//! detailed/fast decision **per sampling cluster**:
//!
//! * every cluster starts unconverged and runs detailed;
//! * each detailed completion feeds the cluster's streaming moments;
//! * once the cluster satisfies the stopping rule
//!   ([`ci_target_met`]: `n ≥ min_samples` and the
//!   relative CI half-width of its mean IPC within `target_ci` at the
//!   configured confidence), it *converges* and its future instances
//!   fast-forward at the streaming mean IPC;
//! * a **rare-cluster cutoff** transplants the paper's rare-task-type
//!   rule: when every worker has completed `rare_cluster_cutoff`
//!   instances without touching an unconverged cluster, clusters that
//!   still lack samples to converge are forced onto whatever estimate
//!   they have, so a cluster with three instances in the whole program
//!   cannot pin the simulation to detailed mode;
//! * the initial **warmup** (`W` detailed instances per worker) feeds
//!   only the fallback moments, exactly like the base controller's
//!   all-samples history.
//!
//! There is no global resampling: a cluster unseen so far is simply a new
//! unconverged cluster (the per-cluster analogue of the paper's
//! new-task-type trigger). Convergence is sticky **per concurrency
//! band**: every valid sample also feeds the moments of its log₂
//! concurrency band ([`concurrency_band`]), and a converged cluster
//! whose live concurrency shifts into a band that does not meet the CI
//! target on its own is *re-opened* — once per band — emitting a
//! [`FidelityAction::ClusterReopened`] event and sampling in detail until
//! both the pooled and the triggering band's moments satisfy the
//! stopping rule again. This is the adaptive counterpart of the base
//! controller's Fig. 4a concurrency-change trigger. Clusters converged
//! by the rare-cluster cutoff stay closed: their estimate is too thin
//! for a per-band test to be meaningful.

use std::collections::{HashMap, HashSet};

use taskpoint_runtime::TaskTypeId;
use taskpoint_stats::{Confidence, StreamingMoments};
use taskpoint_telemetry::{FidelityAction, SimEvent, Sink, Telemetry};
use tasksim::{ExecMode, ModeController, SimMode, TaskReport, TaskStart};

use crate::ci::{ci_target_met, relative_ci_half_width};
use crate::cluster::{concurrency_band, ClusterMap};
use crate::config::{AdaptiveConfig, StratifiedConfig};

/// Per-cluster sampling state (shared with the stratified controller).
#[derive(Debug, Clone, Default)]
pub(crate) struct ClusterState {
    /// Post-warmup detailed samples — what the CI is computed over.
    pub(crate) valid: StreamingMoments,
    /// Every detailed sample including warmup — the fallback estimate.
    pub(crate) all: StreamingMoments,
    /// Valid samples split by the log₂ concurrency band observed at
    /// completion — updated in exact lockstep with `valid`.
    pub(crate) bands: HashMap<u32, StreamingMoments>,
    /// Bands that already triggered a re-open (at most one per band).
    pub(crate) reopened_bands: HashSet<u32>,
    /// The band whose unmet CI re-opened the cluster; re-convergence
    /// additionally requires this band's moments to meet the target.
    pub(crate) pending_band: Option<u32>,
    /// Instances observed starting (any mode).
    pub(crate) seen: u64,
    pub(crate) converged: bool,
    /// Converged via the rare-cluster cutoff rather than the CI test.
    pub(crate) forced: bool,
}

impl ClusterState {
    /// The fast-forward IPC: mean of the valid moments, else of the
    /// fallback moments, else `None`.
    pub(crate) fn ipc(&self) -> Option<f64> {
        for m in [&self.valid, &self.all] {
            if !m.is_empty() && m.mean() > 0.0 {
                return Some(m.mean());
            }
        }
        None
    }

    /// Records a valid sample at the given concurrency, feeding the
    /// pooled and the per-band moments in lockstep.
    pub(crate) fn add_valid(&mut self, ipc: f64, concurrency: u32) {
        self.valid.add(ipc);
        self.all.add(ipc);
        self.bands.entry(concurrency_band(concurrency)).or_default().add(ipc);
    }

    /// The end-of-run accuracy row of this cluster.
    pub(crate) fn accuracy(&self, unit: u32, confidence: Confidence) -> ClusterAccuracy {
        let mut band_ids: Vec<u32> = self.bands.keys().copied().collect();
        for &b in &self.reopened_bands {
            if !self.bands.contains_key(&b) {
                band_ids.push(b);
            }
        }
        band_ids.sort_unstable();
        let bands = band_ids
            .iter()
            .map(|&band| {
                let m = self.bands.get(&band).copied().unwrap_or_default();
                BandAccuracy {
                    band,
                    samples: m.count(),
                    mean_ipc: if m.is_empty() { 0.0 } else { m.mean() },
                    rel_ci: relative_ci_half_width(&m, confidence),
                    reopened: self.reopened_bands.contains(&band),
                }
            })
            .collect();
        ClusterAccuracy {
            unit,
            samples: self.valid.count(),
            seen: self.seen,
            mean_ipc: self.ipc().unwrap_or(0.0),
            rel_ci: relative_ci_half_width(&self.valid, confidence),
            converged: self.converged,
            forced: self.forced,
            bands,
        }
    }
}

/// Telemetry of one adaptive run.
#[derive(Debug, Clone, Default)]
pub struct AdaptiveStats {
    /// Tasks simulated in detail.
    pub detailed_tasks: u64,
    /// Tasks fast-forwarded.
    pub fast_tasks: u64,
    /// Valid (post-warmup) samples measured, per sampling unit.
    pub valid_samples: HashMap<u32, u64>,
    /// Clusters force-converged by the rare-cluster cutoff.
    pub rare_forced: u64,
    /// Converged clusters re-opened by a concurrency-band shift.
    pub reopened: u64,
}

/// End-of-run accuracy of one concurrency band within a cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct BandAccuracy {
    /// The log₂ concurrency band (see
    /// [`concurrency_band`]).
    pub band: u32,
    /// Valid samples observed at this band.
    pub samples: u64,
    /// Streaming mean IPC of the band's samples (0 when empty).
    pub mean_ipc: f64,
    /// Relative CI half-width of the band mean at the configured
    /// confidence; `None` when undefined.
    pub rel_ci: Option<f64>,
    /// Whether a shift into this band re-opened the cluster.
    pub reopened: bool,
}

/// End-of-run accuracy of one sampling cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterAccuracy {
    /// The sampling unit (type id, or virtual id under clustering).
    pub unit: u32,
    /// Valid samples accumulated.
    pub samples: u64,
    /// Instances observed starting (any mode).
    pub seen: u64,
    /// Streaming mean IPC the cluster fast-forwards at (valid moments,
    /// falling back to warmup samples), or 0 when it never completed a
    /// usable detailed instance.
    pub mean_ipc: f64,
    /// Relative CI half-width of the valid mean at the configured
    /// confidence; `None` when undefined (fewer than two valid samples).
    pub rel_ci: Option<f64>,
    /// Whether the cluster converged (stopped sampling).
    pub converged: bool,
    /// Whether convergence came from the rare-cluster cutoff.
    pub forced: bool,
    /// Per-concurrency-band accuracy, sorted by band id. Bands that
    /// re-opened the cluster appear even when they gathered no sample.
    pub bands: Vec<BandAccuracy>,
}

/// The sampling configuration a finished run reports itself under — the
/// policy-specific half of an [`AccuracyReport`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PolicyConfig {
    /// A confidence-driven adaptive run.
    Adaptive(AdaptiveConfig),
    /// A two-phase stratified (pilot + Neyman) run.
    Stratified(StratifiedConfig),
}

impl PolicyConfig {
    /// The configured CI target, when the policy has one (adaptive only:
    /// the stratified policy is budget-driven and has no stopping
    /// target).
    pub fn target_ci(&self) -> Option<f64> {
        match self {
            PolicyConfig::Adaptive(c) => Some(c.params.target_ci),
            PolicyConfig::Stratified(_) => None,
        }
    }

    /// The confidence level the reported intervals are computed at.
    pub fn confidence(&self) -> Confidence {
        match self {
            PolicyConfig::Adaptive(c) => c.params.confidence,
            PolicyConfig::Stratified(c) => c.confidence,
        }
    }
}

/// Per-cluster confidence intervals of a finished adaptive run — the
/// payload behind the campaign record's CI fields.
#[derive(Debug, Clone)]
pub struct AccuracyReport {
    /// The configuration the run used.
    pub config: PolicyConfig,
    /// Per-cluster accuracy, sorted by unit id.
    pub clusters: Vec<ClusterAccuracy>,
    /// Total detailed instances the Neyman allocator handed out after the
    /// pilot phase (stratified runs that reached allocation; `None` for
    /// adaptive runs and pilots cut short by the program ending).
    pub allocated: Option<u64>,
}

impl AccuracyReport {
    /// Number of sampling units observed.
    pub fn units(&self) -> usize {
        self.clusters.len()
    }

    /// Units that converged (by CI or by cutoff).
    pub fn converged_units(&self) -> usize {
        self.clusters.iter().filter(|c| c.converged).count()
    }

    /// Largest defined per-cluster relative CI half-width — the weakest
    /// per-cluster guarantee of the run.
    pub fn max_rel_ci(&self) -> Option<f64> {
        // rel_ci values are finite by construction, so f64::max is exact.
        self.clusters.iter().filter_map(|c| c.rel_ci).reduce(f64::max)
    }

    /// Mean of the defined per-cluster relative CI half-widths.
    pub fn mean_rel_ci(&self) -> Option<f64> {
        let cis: Vec<f64> = self.clusters.iter().filter_map(|c| c.rel_ci).collect();
        if cis.is_empty() {
            None
        } else {
            Some(cis.iter().sum::<f64>() / cis.len() as f64)
        }
    }

    /// Total `(cluster, band)` pairs whose concurrency shift re-opened a
    /// converged cluster.
    pub fn reopened_bands(&self) -> usize {
        self.clusters.iter().flat_map(|c| &c.bands).filter(|b| b.reopened).count()
    }
}

/// The adaptive mode controller. Create one per simulation run.
#[derive(Debug)]
pub struct AdaptiveController {
    config: AdaptiveConfig,
    clusters: HashMap<TaskTypeId, ClusterState>,
    /// Detailed completions per worker during initial warmup.
    warmup_done: Vec<u64>,
    /// Completions per worker since one last touched an unconverged
    /// cluster (the rare-cluster cutoff clock).
    since_unconverged: Vec<u64>,
    workers_known: bool,
    warmup_complete: bool,
    stats: AdaptiveStats,
    /// Receiver of per-cluster fidelity-decision events (disabled by
    /// default; attach with [`set_telemetry`](Self::set_telemetry)).
    telemetry: Telemetry,
}

impl AdaptiveController {
    /// Creates a controller.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`AdaptiveConfig::validate`]).
    pub fn new(config: AdaptiveConfig) -> Self {
        if let Err(e) = config.validate() {
            panic!("invalid adaptive configuration: {e}");
        }
        Self {
            warmup_complete: config.warmup_instances == 0,
            config,
            clusters: HashMap::new(),
            warmup_done: Vec::new(),
            since_unconverged: Vec::new(),
            workers_known: false,
            stats: AdaptiveStats::default(),
            telemetry: Telemetry::disabled(),
        }
    }

    /// Attaches a telemetry handle; a recording one makes the controller
    /// emit one [`SimEvent::Fidelity`] per cluster decision (opened,
    /// sampled, converged, rare-converged) with the CI half-width at
    /// decision time.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Builder-style form of [`set_telemetry`](Self::set_telemetry).
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// The configuration in use.
    pub fn config(&self) -> &AdaptiveConfig {
        &self.config
    }

    /// The telemetry collected so far.
    pub fn stats(&self) -> &AdaptiveStats {
        &self.stats
    }

    /// The per-cluster accuracy picture at this point of the run.
    pub fn report(&self) -> AccuracyReport {
        let mut clusters: Vec<ClusterAccuracy> = self
            .clusters
            .iter()
            .map(|(unit, st)| st.accuracy(unit.0, self.config.params.confidence))
            .collect();
        clusters.sort_by_key(|c| c.unit);
        AccuracyReport { config: PolicyConfig::Adaptive(self.config), clusters, allocated: None }
    }

    /// Consumes the controller, returning telemetry and the accuracy
    /// report.
    pub fn into_parts(self) -> (AdaptiveStats, AccuracyReport) {
        let report = self.report();
        (self.stats, report)
    }

    fn ensure_workers(&mut self, total: u32) {
        if !self.workers_known {
            let n = total as usize;
            self.warmup_done = vec![0; n];
            self.since_unconverged = vec![0; n];
            self.workers_known = true;
        }
    }

    /// True when every worker completed the warmup quota.
    fn check_warmup_complete(&self) -> bool {
        self.warmup_done.iter().all(|&c| c >= self.config.warmup_instances)
    }

    /// True when the rare-cluster cutoff clock expired on every worker.
    fn rare_cutoff_expired(&self) -> bool {
        self.since_unconverged.iter().all(|&c| c >= self.config.rare_cluster_cutoff)
    }

    /// Force-converges every cluster that has any estimate at all.
    /// Clusters are visited in unit-id order so the emitted telemetry is
    /// independent of hash-map iteration order (the per-cluster updates
    /// commute, so the order is otherwise unobservable).
    fn force_converge_rare(&mut self, now: u64) {
        let mut units: Vec<TaskTypeId> = self.clusters.keys().copied().collect();
        units.sort_unstable();
        for unit in units {
            let st = self.clusters.get_mut(&unit).expect("listed cluster exists");
            if !st.converged && st.ipc().is_some() {
                st.converged = true;
                st.forced = true;
                st.pending_band = None;
                self.stats.rare_forced += 1;
                self.telemetry.event(SimEvent::Fidelity {
                    tick: now,
                    unit: unit.0,
                    action: FidelityAction::RareConverged,
                    samples: st.valid.count(),
                    rel_ci: relative_ci_half_width(&st.valid, self.config.params.confidence),
                });
            }
        }
        for c in &mut self.since_unconverged {
            *c = 0;
        }
    }

    fn reset_cutoff_clock(&mut self) {
        for c in &mut self.since_unconverged {
            *c = 0;
        }
    }
}

impl ModeController for AdaptiveController {
    fn mode_for_task(&mut self, start: &TaskStart) -> ExecMode {
        self.ensure_workers(start.total_workers);
        let state = self.clusters.entry(start.type_id).or_default();
        state.seen += 1;
        if state.seen == 1 {
            self.telemetry.event(SimEvent::Fidelity {
                tick: start.time,
                unit: start.type_id.0,
                action: FidelityAction::ClusterOpened,
                samples: 0,
                rel_ci: None,
            });
        }
        if !self.warmup_complete {
            return ExecMode::Detailed;
        }
        if state.converged {
            // Concurrency-band re-opening (Fig. 4a analogue): a shift
            // into a band whose own moments miss the CI target re-opens
            // the cluster — once per band, never for rare-forced
            // clusters (their estimate is too thin for per-band tests).
            if !state.forced {
                let band = concurrency_band(start.concurrency);
                let band_met =
                    state.bands.get(&band).is_some_and(|m| ci_target_met(m, &self.config.params));
                if !band_met && !state.reopened_bands.contains(&band) {
                    state.reopened_bands.insert(band);
                    state.pending_band = Some(band);
                    state.converged = false;
                    self.stats.reopened += 1;
                    let band_ci = state
                        .bands
                        .get(&band)
                        .and_then(|m| relative_ci_half_width(m, self.config.params.confidence));
                    self.telemetry.event(SimEvent::Fidelity {
                        tick: start.time,
                        unit: start.type_id.0,
                        action: FidelityAction::ClusterReopened,
                        samples: state.bands.get(&band).map_or(0, StreamingMoments::count),
                        rel_ci: band_ci,
                    });
                    return ExecMode::Detailed;
                }
            }
            if let Some(ipc) = state.ipc() {
                return ExecMode::Fast { ipc };
            }
            // Converged with no estimate cannot happen through the normal
            // paths; recover by sampling.
            state.converged = false;
        }
        ExecMode::Detailed
    }

    fn on_task_complete(&mut self, report: &TaskReport) {
        match report.mode {
            SimMode::Fast => {
                self.stats.fast_tasks += 1;
                // Fast instances belong to converged clusters: the rare
                // cutoff clock advances.
                self.since_unconverged[report.worker.index()] += 1;
            }
            SimMode::Detailed => {
                self.stats.detailed_tasks += 1;
                let ipc = report.ipc();
                let usable = report.instructions > 0 && report.cycles() > 0 && ipc.is_finite();
                let w = report.worker.index();
                if !self.warmup_complete {
                    self.warmup_done[w] += 1;
                    if usable {
                        let state = self
                            .clusters
                            .get_mut(&report.type_id)
                            .expect("completed task of unregistered cluster");
                        state.all.add(ipc);
                    }
                    if self.check_warmup_complete() {
                        self.warmup_complete = true;
                        self.reset_cutoff_clock();
                    }
                    return;
                }
                let state = self
                    .clusters
                    .get_mut(&report.type_id)
                    .expect("completed task of unregistered cluster");
                if state.converged {
                    // A straggler that started detailed before its cluster
                    // converged: fallback moments only, clock advances.
                    if usable {
                        state.all.add(ipc);
                    }
                    self.since_unconverged[w] += 1;
                } else {
                    if usable {
                        state.add_valid(ipc, report.concurrency);
                        *self.stats.valid_samples.entry(report.type_id.0).or_insert(0) += 1;
                        let rel_ci =
                            relative_ci_half_width(&state.valid, self.config.params.confidence);
                        self.telemetry.event(SimEvent::Fidelity {
                            tick: report.end,
                            unit: report.type_id.0,
                            action: FidelityAction::Sampled,
                            samples: state.valid.count(),
                            rel_ci,
                        });
                        // Re-convergence after a band re-open additionally
                        // requires the triggering band to meet the target
                        // on its own samples.
                        let band_ok = match state.pending_band {
                            None => true,
                            Some(b) => state
                                .bands
                                .get(&b)
                                .is_some_and(|m| ci_target_met(m, &self.config.params)),
                        };
                        if band_ok && ci_target_met(&state.valid, &self.config.params) {
                            state.converged = true;
                            state.pending_band = None;
                            self.telemetry.event(SimEvent::Fidelity {
                                tick: report.end,
                                unit: report.type_id.0,
                                action: FidelityAction::Converged,
                                samples: state.valid.count(),
                                rel_ci,
                            });
                        }
                    }
                    self.reset_cutoff_clock();
                }
            }
        }
        if self.rare_cutoff_expired() {
            self.force_converge_rare(report.end);
        }
    }
}

/// Adaptive sampling over `(type, size-class)` units: the counterpart of
/// the size-clustered base controller, remapping every instance through a
/// [`ClusterMap`] before delegating.
#[derive(Debug)]
pub struct ClusteredAdaptiveController {
    inner: AdaptiveController,
    map: ClusterMap,
}

impl ClusteredAdaptiveController {
    /// Creates a clustered adaptive controller (see [`ClusterMap::new`]
    /// for `granularity`).
    ///
    /// # Panics
    ///
    /// Panics if `granularity == 0` or the configuration is invalid.
    pub fn new(config: AdaptiveConfig, granularity: u32) -> Self {
        Self { inner: AdaptiveController::new(config), map: ClusterMap::new(granularity) }
    }

    /// Number of distinct `(type, size-class)` sampling units seen.
    pub fn num_clusters(&self) -> usize {
        self.map.num_clusters()
    }

    /// Attaches a telemetry handle (events carry virtual unit ids; see
    /// [`AdaptiveController::set_telemetry`]).
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.inner.set_telemetry(telemetry);
    }

    /// The per-cluster accuracy picture (units are virtual ids).
    pub fn report(&self) -> AccuracyReport {
        self.inner.report()
    }

    /// Consumes the controller, returning telemetry and the accuracy
    /// report.
    pub fn into_parts(self) -> (AdaptiveStats, AccuracyReport) {
        self.inner.into_parts()
    }
}

impl ModeController for ClusteredAdaptiveController {
    fn mode_for_task(&mut self, start: &TaskStart) -> ExecMode {
        let mut mapped = *start;
        mapped.type_id = self.map.unit(start.type_id, start.instructions);
        self.inner.mode_for_task(&mapped)
    }

    fn on_task_complete(&mut self, report: &TaskReport) {
        let mut mapped = *report;
        mapped.type_id = self.map.unit(report.type_id, report.instructions);
        self.inner.on_task_complete(&mapped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AdaptiveParams;
    use taskpoint_runtime::{TaskInstanceId, WorkerId};

    fn start(task: u64, type_id: u32, worker: u32, time: u64) -> TaskStart {
        TaskStart {
            task: TaskInstanceId(task),
            type_id: TaskTypeId(type_id),
            instructions: 1000,
            worker: WorkerId(worker),
            time,
            concurrency: 1,
            total_workers: 1,
        }
    }

    fn report(task: u64, type_id: u32, cycles: u64, mode: SimMode) -> TaskReport {
        TaskReport {
            task: TaskInstanceId(task),
            type_id: TaskTypeId(type_id),
            worker: WorkerId(0),
            start: 0,
            end: cycles,
            instructions: 1000,
            mode,
            concurrency: 1,
        }
    }

    /// Drives a 1-worker stream of one type with the given per-instance
    /// cycle counts; returns the number of detailed decisions.
    fn drive(ctrl: &mut AdaptiveController, cycles: &[u64]) -> usize {
        let mut detailed = 0;
        for (i, &c) in cycles.iter().enumerate() {
            let s = start(i as u64, 0, 0, i as u64 * 1000);
            match ctrl.mode_for_task(&s) {
                ExecMode::Detailed => {
                    detailed += 1;
                    ctrl.on_task_complete(&report(i as u64, 0, c, SimMode::Detailed));
                }
                ExecMode::Fast { ipc } => {
                    assert!(ipc > 0.0);
                    ctrl.on_task_complete(&report(i as u64, 0, c, SimMode::Fast));
                }
            }
        }
        detailed
    }

    #[test]
    fn uniform_cluster_converges_at_the_floor() {
        // Identical IPCs: zero variance, CI = 0 at the floor.
        let mut ctrl = AdaptiveController::new(AdaptiveConfig::new(0.05));
        let detailed = drive(&mut ctrl, &[500; 50]);
        // W=2 warmup + min_samples=4 valid samples.
        assert_eq!(detailed, 6);
        assert_eq!(ctrl.stats().fast_tasks, 44);
        let rep = ctrl.report();
        assert_eq!(rep.units(), 1);
        assert_eq!(rep.converged_units(), 1);
        assert_eq!(rep.clusters[0].samples, 4);
        assert!(!rep.clusters[0].forced);
        assert_eq!(rep.max_rel_ci(), Some(0.0));
    }

    #[test]
    fn noisy_cluster_keeps_sampling_until_the_ci_shrinks() {
        let loose = AdaptiveConfig::new(0.20);
        let tight = AdaptiveConfig::new(0.02);
        // Alternating 400/600 cycles: IPC alternates 2.5 / 1.667.
        let cycles: Vec<u64> = (0..400).map(|i| if i % 2 == 0 { 400 } else { 600 }).collect();
        let mut a = AdaptiveController::new(loose);
        let mut b = AdaptiveController::new(tight);
        let loose_detail = drive(&mut a, &cycles);
        let tight_detail = drive(&mut b, &cycles);
        assert!(
            loose_detail < tight_detail,
            "tighter target must sample more: {loose_detail} vs {tight_detail}"
        );
        assert!(tight_detail < cycles.len(), "tight target still converges eventually");
    }

    #[test]
    fn never_converges_below_min_samples() {
        let config =
            AdaptiveConfig::new(0.5).with_params(AdaptiveParams::new(0.5).with_min_samples(9));
        let mut ctrl = AdaptiveController::new(config);
        let detailed = drive(&mut ctrl, &[500; 30]);
        assert_eq!(detailed, 2 + 9, "warmup + floor");
    }

    #[test]
    fn zero_warmup_samples_immediately() {
        let mut ctrl = AdaptiveController::new(AdaptiveConfig::new(0.05).with_warmup(0));
        let detailed = drive(&mut ctrl, &[500; 20]);
        assert_eq!(detailed, 4, "no warmup: floor only");
    }

    #[test]
    fn rare_cluster_is_force_converged_by_the_cutoff() {
        let mut ctrl = AdaptiveController::new(AdaptiveConfig::new(0.05));
        let mut task = 0u64;
        let mut run = |ctrl: &mut AdaptiveController, ty: u32, cycles: u64| -> ExecMode {
            let s = start(task, ty, 0, task * 1000);
            let mode = ctrl.mode_for_task(&s);
            let sim_mode = match mode {
                ExecMode::Detailed => SimMode::Detailed,
                ExecMode::Fast { .. } => SimMode::Fast,
            };
            ctrl.on_task_complete(&report(task, ty, cycles, sim_mode));
            task += 1;
            mode
        };
        // One rare-type instance during the stream, then common type only.
        for _ in 0..3 {
            run(&mut ctrl, 0, 500);
        }
        run(&mut ctrl, 1, 250); // rare type: one valid sample, unconverged
        for _ in 0..20 {
            run(&mut ctrl, 0, 500);
        }
        // Common type converged; after `rare_cluster_cutoff` fast
        // completions the rare cluster is forced.
        assert_eq!(ctrl.stats().rare_forced, 1);
        let mode = run(&mut ctrl, 1, 250);
        assert!(
            matches!(mode, ExecMode::Fast { .. }),
            "rare cluster fast-forwards on its single-sample estimate"
        );
        let rep = ctrl.report();
        let rare = rep.clusters.iter().find(|c| c.unit == 1).unwrap();
        assert!(rare.forced && rare.converged);
    }

    #[test]
    fn clustered_adaptive_separates_size_classes() {
        let mut ctrl = ClusteredAdaptiveController::new(AdaptiveConfig::new(0.1).with_warmup(0), 1);
        for task in 0..40u64 {
            let instrs = if task % 2 == 0 { 200 } else { 100_000 };
            let s = TaskStart {
                task: TaskInstanceId(task),
                type_id: TaskTypeId(0),
                instructions: instrs,
                worker: WorkerId(0),
                time: task * 1000,
                concurrency: 1,
                total_workers: 1,
            };
            let mode = ctrl.mode_for_task(&s);
            let sim_mode = match mode {
                ExecMode::Detailed => SimMode::Detailed,
                ExecMode::Fast { .. } => SimMode::Fast,
            };
            ctrl.on_task_complete(&TaskReport {
                task: TaskInstanceId(task),
                type_id: TaskTypeId(0),
                worker: WorkerId(0),
                start: 0,
                end: instrs / 2,
                instructions: instrs,
                mode: sim_mode,
                concurrency: 1,
            });
        }
        assert_eq!(ctrl.num_clusters(), 2, "one type, two size classes");
        assert_eq!(ctrl.report().units(), 2);
    }

    fn start_c(task: u64, type_id: u32, concurrency: u32) -> TaskStart {
        TaskStart { concurrency, ..start(task, type_id, 0, task * 1000) }
    }

    fn report_c(
        task: u64,
        type_id: u32,
        cycles: u64,
        mode: SimMode,
        concurrency: u32,
    ) -> TaskReport {
        TaskReport { concurrency, ..report(task, type_id, cycles, mode) }
    }

    /// Runs one instance at the given concurrency; returns the decision.
    fn run_at(ctrl: &mut AdaptiveController, task: u64, cycles: u64, concurrency: u32) -> ExecMode {
        let mode = ctrl.mode_for_task(&start_c(task, 0, concurrency));
        let sim_mode = match mode {
            ExecMode::Detailed => SimMode::Detailed,
            ExecMode::Fast { .. } => SimMode::Fast,
        };
        ctrl.on_task_complete(&report_c(task, 0, cycles, sim_mode, concurrency));
        mode
    }

    #[test]
    fn concurrency_shift_reopens_a_converged_cluster_once_per_band() {
        let mut ctrl = AdaptiveController::new(AdaptiveConfig::new(0.05));
        let mut task = 0u64;
        // Converge at concurrency 1 (band 0): W=2 + floor 4 detailed.
        for _ in 0..10 {
            run_at(&mut ctrl, task, 500, 1);
            task += 1;
        }
        assert_eq!(ctrl.stats().reopened, 0);
        assert!(ctrl.report().clusters[0].converged);
        // Shift into band 2 (concurrency 4): the empty band misses the
        // target, so the cluster re-opens and samples in detail.
        let mode = run_at(&mut ctrl, task, 500, 4);
        task += 1;
        assert_eq!(mode, ExecMode::Detailed, "shifted band re-opens the cluster");
        assert_eq!(ctrl.stats().reopened, 1);
        // Keep sampling at concurrency 4 until the band re-converges.
        for _ in 0..10 {
            run_at(&mut ctrl, task, 500, 4);
            task += 1;
        }
        let rep = ctrl.report();
        assert!(rep.clusters[0].converged, "band met its target again");
        assert_eq!(rep.reopened_bands(), 1);
        let band2 = rep.clusters[0].bands.iter().find(|b| b.band == 2).unwrap();
        assert!(band2.reopened && band2.samples >= 4);
        // A second shift into the same band stays fast: one re-open per
        // band.
        let mode = run_at(&mut ctrl, task, 500, 4);
        assert!(matches!(mode, ExecMode::Fast { .. }));
        assert_eq!(ctrl.stats().reopened, 1);
    }

    #[test]
    fn constant_concurrency_never_reopens() {
        // The triggering band's moments are bit-identical to the pooled
        // moments at constant concurrency, so convergence is sticky.
        let mut ctrl = AdaptiveController::new(AdaptiveConfig::new(0.05));
        for task in 0..200u64 {
            run_at(&mut ctrl, task, if task % 2 == 0 { 400 } else { 600 }, 3);
        }
        assert_eq!(ctrl.stats().reopened, 0);
        assert_eq!(ctrl.report().reopened_bands(), 0);
    }

    #[test]
    fn rare_forced_clusters_stay_closed_across_bands() {
        let mut ctrl = AdaptiveController::new(AdaptiveConfig::new(0.05));
        let mut task = 0u64;
        let mut run = |ctrl: &mut AdaptiveController, ty: u32, concurrency: u32| -> ExecMode {
            let s = start_c(task, ty, concurrency);
            let mode = ctrl.mode_for_task(&s);
            let sim_mode = match mode {
                ExecMode::Detailed => SimMode::Detailed,
                ExecMode::Fast { .. } => SimMode::Fast,
            };
            ctrl.on_task_complete(&report_c(task, ty, 500, sim_mode, concurrency));
            task += 1;
            mode
        };
        for _ in 0..3 {
            run(&mut ctrl, 0, 1);
        }
        run(&mut ctrl, 1, 1); // rare type: one sample
        for _ in 0..20 {
            run(&mut ctrl, 0, 1);
        }
        assert_eq!(ctrl.stats().rare_forced, 1);
        // The rare cluster at a brand-new concurrency band must not
        // re-open: its single-sample estimate makes band tests
        // meaningless.
        let mode = run(&mut ctrl, 1, 8);
        assert!(matches!(mode, ExecMode::Fast { .. }));
        assert_eq!(ctrl.stats().reopened, 0);
    }

    #[test]
    fn invalid_ipc_reports_are_skipped() {
        let mut ctrl = AdaptiveController::new(AdaptiveConfig::new(0.05).with_warmup(0));
        let s = start(0, 0, 0, 0);
        assert_eq!(ctrl.mode_for_task(&s), ExecMode::Detailed);
        // Zero-cycle completion carries no IPC: no sample recorded.
        ctrl.on_task_complete(&report(0, 0, 0, SimMode::Detailed));
        assert_eq!(ctrl.stats().detailed_tasks, 1);
        assert!(ctrl.stats().valid_samples.is_empty());
    }

    #[test]
    #[should_panic(expected = "min_samples must be positive")]
    fn invalid_config_rejected() {
        AdaptiveController::new(
            AdaptiveConfig::new(0.05).with_params(AdaptiveParams::new(0.05).with_min_samples(0)),
        );
    }
}
