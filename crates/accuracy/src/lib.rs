//! # taskpoint-accuracy — confidence-driven sampling
//!
//! TaskPoint's fixed-budget policies (lazy, periodic `P`) spend the same
//! sampling effort on every task-type cluster regardless of how predictable
//! the cluster actually is. This crate adds the *statistical* layer that
//! turns the sample budget into a controlled quantity:
//!
//! * per-cluster **streaming moments** of detailed-mode IPC
//!   ([`taskpoint_stats::StreamingMoments`], Welford-updated online);
//! * a **relative confidence-interval estimator**
//!   ([`relative_ci_half_width`]) built on the pinned Student-t critical
//!   values in [`taskpoint_stats::student_t`];
//! * the [`AdaptiveController`]: each sampling cluster stays in detailed
//!   mode until the relative CI half-width of its mean IPC, at the
//!   configured confidence level, drops below a target — subject to a
//!   minimum-sample floor and the rare-cluster cutoff inherited from the
//!   paper's rare-task-type rule — and is fast-forwarded from then on;
//! * the [`ClusterMap`] that buckets instances into `(task type,
//!   size-class)` sampling units (shared with the size-clustered
//!   controller in the sampling core), plus the [`concurrency_band`]
//!   log₂ bucketing that makes convergence concurrency-aware: both
//!   controllers keep per-band moments and *re-open* a converged cluster
//!   when the live concurrency shifts into a band whose interval misses
//!   the target (the adaptive analogue of the paper's Fig. 4a
//!   concurrency-change trigger);
//! * the [`StratifiedController`] with its pure Neyman allocator
//!   ([`neyman_allocate`]): a pilot phase per stratum estimates the
//!   variance, then the remaining detailed budget is split proportional
//!   to stratum size × stddev with exact integer conservation.
//!
//! Driving the budget from per-stratum variance follows Ekman & Stenström,
//! *"Enhancing Multiprocessor Architecture Simulation Speed Using
//! Matched-Pair Comparison"* / two-phase stratified sampling: low-variance
//! clusters converge after the floor, high-variance clusters keep
//! sampling, and the target becomes a dial that traces an error/speedup
//! frontier instead of a single operating point.
//!
//! The sampling core (`taskpoint`) wires this controller into
//! `run_adaptive` / `run_clustered_adaptive` and exposes the policy as
//! `SamplingPolicy::Adaptive`; this crate is deliberately independent of
//! it so the statistical machinery is testable on bare synthetic streams.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allocate;
pub mod ci;
pub mod cluster;
pub mod config;
pub mod controller;
pub mod stratified;

pub use allocate::{neyman_allocate, Stratum};
pub use ci::{ci_target_met, relative_ci_half_width};
pub use cluster::{concurrency_band, ClusterMap};
pub use config::{
    AdaptiveConfig, AdaptiveParams, AdaptiveParamsError, StratifiedConfig, StratifiedConfigError,
};
pub use controller::{
    AccuracyReport, AdaptiveController, AdaptiveStats, BandAccuracy, ClusterAccuracy,
    ClusteredAdaptiveController, PolicyConfig,
};
pub use stratified::StratifiedController;
