//! The relative confidence-interval estimator.

use taskpoint_stats::{student_t_critical, Confidence, StreamingMoments};

use crate::config::AdaptiveParams;

/// Relative half-width of the two-sided confidence interval of the mean:
/// `t_{1-α/2, n-1} · (s / √n) / x̄`.
///
/// Returns `None` when the interval is undefined: fewer than two samples
/// (no variance estimate) or a non-positive mean (IPC means are positive
/// by construction; anything else carries no timing information).
///
/// ```
/// use taskpoint_accuracy::relative_ci_half_width;
/// use taskpoint_stats::{Confidence, StreamingMoments};
///
/// let m: StreamingMoments = [2.0, 2.1, 1.9, 2.0].into_iter().collect();
/// let ci = relative_ci_half_width(&m, Confidence::C95).unwrap();
/// assert!(ci > 0.0 && ci < 0.1, "tight cluster: CI ~6.5% of the mean");
/// ```
pub fn relative_ci_half_width(moments: &StreamingMoments, confidence: Confidence) -> Option<f64> {
    let se = moments.std_error()?;
    let mean = moments.mean();
    if mean <= 0.0 {
        return None;
    }
    let t = student_t_critical(confidence, moments.count() - 1);
    Some(t * se / mean)
}

/// The adaptive stopping rule: true when `moments` satisfies `params`.
///
/// A cluster may stop sampling when it has at least `min_samples` samples
/// **and** its relative CI half-width is within `target_ci`. A target of
/// exactly `0.0` waives the statistical requirement (degenerate
/// fixed-budget mode — see [`AdaptiveParams::target_ci`]); a positive
/// target with an undefined interval is never met.
pub fn ci_target_met(moments: &StreamingMoments, params: &AdaptiveParams) -> bool {
    if moments.count() < params.min_samples {
        return false;
    }
    if params.target_ci == 0.0 {
        return true;
    }
    match relative_ci_half_width(moments, params.confidence) {
        Some(ci) => ci <= params.target_ci,
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn moments(xs: &[f64]) -> StreamingMoments {
        xs.iter().copied().collect()
    }

    #[test]
    fn matches_hand_computed_interval() {
        // n=4, mean=2.0, s^2 = ((0.1)^2 * 2 + 0 + 0)/3 -> s = sqrt(0.02/3)
        let m = moments(&[1.9, 2.1, 2.0, 2.0]);
        let s = (0.02f64 / 3.0).sqrt();
        let expect = 3.182 * (s / 4.0f64.sqrt()) / 2.0; // t_{.975,3} = 3.182
        let got = relative_ci_half_width(&m, Confidence::C95).unwrap();
        assert!((got - expect).abs() < 1e-12, "{got} vs {expect}");
    }

    #[test]
    fn undefined_cases_return_none() {
        assert_eq!(relative_ci_half_width(&moments(&[]), Confidence::C95), None);
        assert_eq!(relative_ci_half_width(&moments(&[2.0]), Confidence::C95), None);
        assert_eq!(relative_ci_half_width(&moments(&[-1.0, -2.0]), Confidence::C95), None);
    }

    #[test]
    fn higher_confidence_widens_the_interval() {
        let m = moments(&[1.0, 1.2, 0.9, 1.1, 1.0]);
        let c90 = relative_ci_half_width(&m, Confidence::C90).unwrap();
        let c95 = relative_ci_half_width(&m, Confidence::C95).unwrap();
        let c99 = relative_ci_half_width(&m, Confidence::C99).unwrap();
        assert!(c90 < c95 && c95 < c99);
    }

    #[test]
    fn stopping_rule_honors_floor_target_and_degenerate_zero() {
        let tight = AdaptiveParams::new(0.5).with_min_samples(4);
        let m3 = moments(&[2.0, 2.0, 2.0]);
        assert!(!ci_target_met(&m3, &tight), "below the floor");
        let m4 = moments(&[2.0, 2.0, 2.0, 2.0]);
        assert!(ci_target_met(&m4, &tight), "zero variance meets any positive target");
        let noisy = moments(&[1.0, 4.0, 0.5, 6.0]);
        assert!(!ci_target_met(&noisy, &AdaptiveParams::new(0.05)), "wide CI misses 5%");
        assert!(ci_target_met(&noisy, &AdaptiveParams::new(0.0)), "target 0 waives the CI test");
        // Positive target + undefined CI (single sample, floor 1): never met.
        let single = moments(&[2.0]);
        assert!(!ci_target_met(&single, &AdaptiveParams::new(0.1).with_min_samples(1)));
        assert!(ci_target_met(&single, &AdaptiveParams::new(0.0).with_min_samples(1)));
    }

    #[test]
    fn more_samples_eventually_meet_a_positive_target() {
        let params = AdaptiveParams::new(0.05).with_min_samples(2);
        let mut m = StreamingMoments::new();
        let mut met_at = None;
        for i in 0..10_000u64 {
            // Alternating 1.8 / 2.2: CoV ~0.1, CI shrinks as 1/sqrt(n).
            m.add(if i % 2 == 0 { 1.8 } else { 2.2 });
            if met_at.is_none() && ci_target_met(&m, &params) {
                met_at = Some(i + 1);
            }
        }
        let n = met_at.expect("CI must eventually shrink below 5%");
        assert!((10..=100).contains(&n), "plausible stopping point, got {n}");
    }
}
