//! Parameters of the confidence-driven adaptive policy.

use serde::{Deserialize, Serialize};
use taskpoint_stats::Confidence;

/// The three knobs of the adaptive stopping rule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveParams {
    /// Target relative confidence-interval half-width (a fraction: `0.05`
    /// = the cluster's mean IPC is known to ±5% at the configured
    /// confidence). **`0.0` is the degenerate setting**: the statistical
    /// requirement is waived and a cluster stops after exactly
    /// `min_samples` detailed instances — i.e. the policy collapses to
    /// the fixed-budget lazy policy with history size `min_samples`
    /// (pinned by a workspace property test). A *positive* target can
    /// never be met sooner than a looser one, so tightening the target
    /// monotonically increases the detailed-instance count.
    pub target_ci: f64,
    /// Two-sided confidence level of the interval.
    pub confidence: Confidence,
    /// Minimum detailed samples per cluster before it may fast-forward,
    /// regardless of how quickly the interval shrinks (`>= 1`; values
    /// `< 2` make the CI test unreachable until a second sample exists,
    /// since a single sample has no variance estimate).
    pub min_samples: u64,
}

impl AdaptiveParams {
    /// Parameters at the given CI target with the conventional defaults:
    /// 95% confidence and a 4-sample floor (the paper's tuned `H`).
    pub fn new(target_ci: f64) -> Self {
        Self { target_ci, confidence: Confidence::C95, min_samples: 4 }
    }

    /// Overrides the confidence level.
    pub fn with_confidence(mut self, confidence: Confidence) -> Self {
        self.confidence = confidence;
        self
    }

    /// Overrides the minimum-sample floor.
    pub fn with_min_samples(mut self, min_samples: u64) -> Self {
        self.min_samples = min_samples;
        self
    }

    /// Validates parameter ranges.
    pub fn validate(&self) -> Result<(), AdaptiveParamsError> {
        if !self.target_ci.is_finite() || self.target_ci < 0.0 {
            return Err(AdaptiveParamsError::BadTarget { target_ci: self.target_ci });
        }
        if self.min_samples == 0 {
            return Err(AdaptiveParamsError::ZeroMinSamples);
        }
        Ok(())
    }
}

/// An out-of-range [`AdaptiveParams`] field.
#[derive(Debug, Clone, PartialEq)]
pub enum AdaptiveParamsError {
    /// `target_ci` is negative or non-finite.
    BadTarget {
        /// The rejected value.
        target_ci: f64,
    },
    /// `min_samples` is zero — a cluster could fast-forward with no IPC
    /// estimate at all.
    ZeroMinSamples,
}

impl std::fmt::Display for AdaptiveParamsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdaptiveParamsError::BadTarget { target_ci } => {
                write!(f, "adaptive CI target must be a finite fraction >= 0, got {target_ci}")
            }
            AdaptiveParamsError::ZeroMinSamples => {
                write!(f, "adaptive min_samples must be positive")
            }
        }
    }
}

impl std::error::Error for AdaptiveParamsError {}

/// Full configuration of an [`AdaptiveController`](crate::AdaptiveController).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveConfig {
    /// `W`: detailed instances per worker at simulation start whose IPC
    /// only feeds the fallback (all-samples) moments — micro-architectural
    /// warmup, exactly as in the base controller.
    pub warmup_instances: u64,
    /// Rare-cluster cutoff: once every worker has completed this many
    /// instances without touching an unconverged cluster, clusters that
    /// still lack their floor are force-converged onto whatever estimate
    /// they have (the transplant of the paper's rare-task-type rule —
    /// a cluster too rare to ever satisfy the floor must not pin its
    /// occasional instances to detailed mode forever).
    pub rare_cluster_cutoff: u64,
    /// The stopping rule.
    pub params: AdaptiveParams,
}

impl AdaptiveConfig {
    /// Configuration at the given CI target with the paper-tuned
    /// surroundings: `W = 2`, rare cutoff 5, 95% confidence, 4-sample
    /// floor.
    pub fn new(target_ci: f64) -> Self {
        Self { warmup_instances: 2, rare_cluster_cutoff: 5, params: AdaptiveParams::new(target_ci) }
    }

    /// Overrides `W`.
    pub fn with_warmup(mut self, warmup: u64) -> Self {
        self.warmup_instances = warmup;
        self
    }

    /// Overrides the stopping rule.
    pub fn with_params(mut self, params: AdaptiveParams) -> Self {
        self.params = params;
        self
    }

    /// Validates parameter ranges.
    pub fn validate(&self) -> Result<(), AdaptiveParamsError> {
        self.params.validate()
    }
}

/// Full configuration of a
/// [`StratifiedController`](crate::StratifiedController) — the two-phase
/// pilot + Neyman-allocation policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StratifiedConfig {
    /// `W`: detailed instances per worker at simulation start whose IPC
    /// only feeds the fallback (all-samples) moments, exactly as in the
    /// adaptive controller.
    pub warmup_instances: u64,
    /// Pilot phase: detailed instances per `(type, size-class)` stratum
    /// used to estimate the stratum's IPC variance before allocation.
    pub pilot_samples: u64,
    /// Total detailed-sampling budget (post-warmup, pilot included).
    /// The Neyman allocator distributes `budget − pilot spend`; when the
    /// pilots consume the whole budget the run degenerates to pilot-only.
    pub budget: u64,
    /// Confidence level of the reported per-stratum intervals and of the
    /// band re-opening test.
    pub confidence: Confidence,
    /// Size-class width in powers of two of the stratification
    /// (see [`ClusterMap::new`](crate::ClusterMap::new)).
    pub granularity: u32,
}

impl StratifiedConfig {
    /// Configuration with the conventional surroundings: `W = 2`, 95%
    /// confidence, octave size classes.
    pub fn new(pilot_samples: u64, budget: u64) -> Self {
        Self {
            warmup_instances: 2,
            pilot_samples,
            budget,
            confidence: Confidence::C95,
            granularity: 1,
        }
    }

    /// Overrides `W`.
    pub fn with_warmup(mut self, warmup: u64) -> Self {
        self.warmup_instances = warmup;
        self
    }

    /// Overrides the confidence level.
    pub fn with_confidence(mut self, confidence: Confidence) -> Self {
        self.confidence = confidence;
        self
    }

    /// Overrides the size-class granularity.
    pub fn with_granularity(mut self, granularity: u32) -> Self {
        self.granularity = granularity;
        self
    }

    /// Validates parameter ranges.
    pub fn validate(&self) -> Result<(), StratifiedConfigError> {
        if self.pilot_samples == 0 {
            return Err(StratifiedConfigError::ZeroPilot);
        }
        if self.budget < self.pilot_samples {
            return Err(StratifiedConfigError::BudgetBelowPilot {
                pilot_samples: self.pilot_samples,
                budget: self.budget,
            });
        }
        if self.granularity == 0 {
            return Err(StratifiedConfigError::ZeroGranularity);
        }
        Ok(())
    }
}

/// An out-of-range [`StratifiedConfig`] field.
#[derive(Debug, Clone, PartialEq)]
pub enum StratifiedConfigError {
    /// `pilot_samples` is zero — no variance estimate could ever exist.
    ZeroPilot,
    /// `budget` is smaller than a single stratum's pilot — even a
    /// one-stratum program could not complete its pilot within budget.
    BudgetBelowPilot {
        /// The configured per-stratum pilot.
        pilot_samples: u64,
        /// The rejected total budget.
        budget: u64,
    },
    /// `granularity` is zero (rejected by [`ClusterMap`](crate::ClusterMap)).
    ZeroGranularity,
}

impl std::fmt::Display for StratifiedConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StratifiedConfigError::ZeroPilot => {
                write!(f, "stratified pilot_samples must be positive")
            }
            StratifiedConfigError::BudgetBelowPilot { pilot_samples, budget } => {
                write!(
                    f,
                    "stratified budget ({budget}) must cover at least one stratum's \
                     pilot ({pilot_samples})"
                )
            }
            StratifiedConfigError::ZeroGranularity => {
                write!(f, "stratified granularity must be positive")
            }
        }
    }
}

impl std::error::Error for StratifiedConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_follow_the_paper_tuning() {
        let c = AdaptiveConfig::new(0.05);
        assert_eq!(c.warmup_instances, 2);
        assert_eq!(c.rare_cluster_cutoff, 5);
        assert_eq!(c.params.target_ci, 0.05);
        assert_eq!(c.params.confidence, Confidence::C95);
        assert_eq!(c.params.min_samples, 4);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn builders_override() {
        let p = AdaptiveParams::new(0.02).with_confidence(Confidence::C99).with_min_samples(8);
        assert_eq!(p.confidence, Confidence::C99);
        assert_eq!(p.min_samples, 8);
        let c = AdaptiveConfig::new(0.1).with_warmup(0).with_params(p);
        assert_eq!(c.warmup_instances, 0);
        assert_eq!(c.params, p);
    }

    #[test]
    fn invalid_params_are_typed_errors() {
        assert_eq!(
            AdaptiveParams::new(-0.1).validate(),
            Err(AdaptiveParamsError::BadTarget { target_ci: -0.1 })
        );
        assert!(AdaptiveParams::new(f64::NAN).validate().is_err());
        assert_eq!(
            AdaptiveParams::new(0.05).with_min_samples(0).validate(),
            Err(AdaptiveParamsError::ZeroMinSamples)
        );
        assert_eq!(AdaptiveParams::new(0.0).validate(), Ok(()), "degenerate target is legal");
    }

    #[test]
    fn stratified_defaults_and_builders() {
        let c = StratifiedConfig::new(4, 64);
        assert_eq!(c.warmup_instances, 2);
        assert_eq!(c.pilot_samples, 4);
        assert_eq!(c.budget, 64);
        assert_eq!(c.confidence, Confidence::C95);
        assert_eq!(c.granularity, 1);
        assert!(c.validate().is_ok());
        let c = c.with_warmup(0).with_confidence(Confidence::C99).with_granularity(2);
        assert_eq!(c.warmup_instances, 0);
        assert_eq!(c.confidence, Confidence::C99);
        assert_eq!(c.granularity, 2);
    }

    #[test]
    fn invalid_stratified_configs_are_typed_errors() {
        assert_eq!(StratifiedConfig::new(0, 10).validate(), Err(StratifiedConfigError::ZeroPilot));
        assert_eq!(
            StratifiedConfig::new(8, 4).validate(),
            Err(StratifiedConfigError::BudgetBelowPilot { pilot_samples: 8, budget: 4 })
        );
        assert_eq!(
            StratifiedConfig::new(4, 64).with_granularity(0).validate(),
            Err(StratifiedConfigError::ZeroGranularity)
        );
        // Pilot-only (budget == pilot_samples) is the documented
        // degenerate setting, not an error.
        assert!(StratifiedConfig::new(8, 8).validate().is_ok());
    }
}
