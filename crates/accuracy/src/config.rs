//! Parameters of the confidence-driven adaptive policy.

use serde::{Deserialize, Serialize};
use taskpoint_stats::Confidence;

/// The three knobs of the adaptive stopping rule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveParams {
    /// Target relative confidence-interval half-width (a fraction: `0.05`
    /// = the cluster's mean IPC is known to ±5% at the configured
    /// confidence). **`0.0` is the degenerate setting**: the statistical
    /// requirement is waived and a cluster stops after exactly
    /// `min_samples` detailed instances — i.e. the policy collapses to
    /// the fixed-budget lazy policy with history size `min_samples`
    /// (pinned by a workspace property test). A *positive* target can
    /// never be met sooner than a looser one, so tightening the target
    /// monotonically increases the detailed-instance count.
    pub target_ci: f64,
    /// Two-sided confidence level of the interval.
    pub confidence: Confidence,
    /// Minimum detailed samples per cluster before it may fast-forward,
    /// regardless of how quickly the interval shrinks (`>= 1`; values
    /// `< 2` make the CI test unreachable until a second sample exists,
    /// since a single sample has no variance estimate).
    pub min_samples: u64,
}

impl AdaptiveParams {
    /// Parameters at the given CI target with the conventional defaults:
    /// 95% confidence and a 4-sample floor (the paper's tuned `H`).
    pub fn new(target_ci: f64) -> Self {
        Self { target_ci, confidence: Confidence::C95, min_samples: 4 }
    }

    /// Overrides the confidence level.
    pub fn with_confidence(mut self, confidence: Confidence) -> Self {
        self.confidence = confidence;
        self
    }

    /// Overrides the minimum-sample floor.
    pub fn with_min_samples(mut self, min_samples: u64) -> Self {
        self.min_samples = min_samples;
        self
    }

    /// Validates parameter ranges.
    pub fn validate(&self) -> Result<(), AdaptiveParamsError> {
        if !self.target_ci.is_finite() || self.target_ci < 0.0 {
            return Err(AdaptiveParamsError::BadTarget { target_ci: self.target_ci });
        }
        if self.min_samples == 0 {
            return Err(AdaptiveParamsError::ZeroMinSamples);
        }
        Ok(())
    }
}

/// An out-of-range [`AdaptiveParams`] field.
#[derive(Debug, Clone, PartialEq)]
pub enum AdaptiveParamsError {
    /// `target_ci` is negative or non-finite.
    BadTarget {
        /// The rejected value.
        target_ci: f64,
    },
    /// `min_samples` is zero — a cluster could fast-forward with no IPC
    /// estimate at all.
    ZeroMinSamples,
}

impl std::fmt::Display for AdaptiveParamsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdaptiveParamsError::BadTarget { target_ci } => {
                write!(f, "adaptive CI target must be a finite fraction >= 0, got {target_ci}")
            }
            AdaptiveParamsError::ZeroMinSamples => {
                write!(f, "adaptive min_samples must be positive")
            }
        }
    }
}

impl std::error::Error for AdaptiveParamsError {}

/// Full configuration of an [`AdaptiveController`](crate::AdaptiveController).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveConfig {
    /// `W`: detailed instances per worker at simulation start whose IPC
    /// only feeds the fallback (all-samples) moments — micro-architectural
    /// warmup, exactly as in the base controller.
    pub warmup_instances: u64,
    /// Rare-cluster cutoff: once every worker has completed this many
    /// instances without touching an unconverged cluster, clusters that
    /// still lack their floor are force-converged onto whatever estimate
    /// they have (the transplant of the paper's rare-task-type rule —
    /// a cluster too rare to ever satisfy the floor must not pin its
    /// occasional instances to detailed mode forever).
    pub rare_cluster_cutoff: u64,
    /// The stopping rule.
    pub params: AdaptiveParams,
}

impl AdaptiveConfig {
    /// Configuration at the given CI target with the paper-tuned
    /// surroundings: `W = 2`, rare cutoff 5, 95% confidence, 4-sample
    /// floor.
    pub fn new(target_ci: f64) -> Self {
        Self { warmup_instances: 2, rare_cluster_cutoff: 5, params: AdaptiveParams::new(target_ci) }
    }

    /// Overrides `W`.
    pub fn with_warmup(mut self, warmup: u64) -> Self {
        self.warmup_instances = warmup;
        self
    }

    /// Overrides the stopping rule.
    pub fn with_params(mut self, params: AdaptiveParams) -> Self {
        self.params = params;
        self
    }

    /// Validates parameter ranges.
    pub fn validate(&self) -> Result<(), AdaptiveParamsError> {
        self.params.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_follow_the_paper_tuning() {
        let c = AdaptiveConfig::new(0.05);
        assert_eq!(c.warmup_instances, 2);
        assert_eq!(c.rare_cluster_cutoff, 5);
        assert_eq!(c.params.target_ci, 0.05);
        assert_eq!(c.params.confidence, Confidence::C95);
        assert_eq!(c.params.min_samples, 4);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn builders_override() {
        let p = AdaptiveParams::new(0.02).with_confidence(Confidence::C99).with_min_samples(8);
        assert_eq!(p.confidence, Confidence::C99);
        assert_eq!(p.min_samples, 8);
        let c = AdaptiveConfig::new(0.1).with_warmup(0).with_params(p);
        assert_eq!(c.warmup_instances, 0);
        assert_eq!(c.params, p);
    }

    #[test]
    fn invalid_params_are_typed_errors() {
        assert_eq!(
            AdaptiveParams::new(-0.1).validate(),
            Err(AdaptiveParamsError::BadTarget { target_ci: -0.1 })
        );
        assert!(AdaptiveParams::new(f64::NAN).validate().is_err());
        assert_eq!(
            AdaptiveParams::new(0.05).with_min_samples(0).validate(),
            Err(AdaptiveParamsError::ZeroMinSamples)
        );
        assert_eq!(AdaptiveParams::new(0.0).validate(), Ok(()), "degenerate target is legal");
    }
}
