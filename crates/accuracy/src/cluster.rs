//! `(task type, size-class)` sampling units.
//!
//! The paper's §V-B future-work proposal — classify instances of one task
//! type into classes of similar performance using micro-architecture
//! independent metrics, e.g. instruction count — needs a stable mapping
//! from `(type, size)` to a dense *virtual type id*. [`ClusterMap`] is
//! that mapping, shared by the size-clustered base controller in the
//! sampling core and by [`ClusteredAdaptiveController`](crate::ClusteredAdaptiveController):
//! the size class is the log₂ bucket (width configurable) of the
//! instance's dynamic instruction count, and ids are handed out densely
//! in first-encounter order — stable, dense (`0..num_clusters`) and
//! injective across distinct pairs, the invariants the workspace property
//! tests pin down.

use std::collections::HashMap;

use taskpoint_runtime::TaskTypeId;

/// The concurrency band of an observed machine concurrency level: the
/// log₂ bucket of the number of simultaneously running tasks, so a
/// doubling of parallelism shifts the band — the banded analogue of the
/// base controller's factor-of-two concurrency-change trigger (paper
/// Fig. 4a). Concurrency 0 is clamped to 1 (band 0).
pub fn concurrency_band(concurrency: u32) -> u32 {
    31 - concurrency.max(1).leading_zeros()
}

/// Dense remapping of `(type, size-class)` pairs to virtual type ids.
#[derive(Debug, Clone, Default)]
pub struct ClusterMap {
    /// log2 granularity: instances whose instruction counts fall in the
    /// same `[2^(g*k), 2^(g*(k+1)))` band share a class.
    granularity: u32,
    virtual_ids: HashMap<(u32, u32), u32>,
}

impl ClusterMap {
    /// Creates a map. `granularity` is the width of a size class in
    /// powers of two: 1 = one class per octave of instruction count
    /// (fine), 2 = one class per factor of 4, ...
    ///
    /// # Panics
    ///
    /// Panics if `granularity == 0`.
    pub fn new(granularity: u32) -> Self {
        assert!(granularity > 0, "granularity must be positive");
        Self { granularity, virtual_ids: HashMap::new() }
    }

    /// The configured size-class width in powers of two.
    pub fn granularity(&self) -> u32 {
        self.granularity
    }

    /// The size class of an instance with `instructions` dynamic
    /// instructions.
    pub fn size_class(&self, instructions: u64) -> u32 {
        let log2 = 63 - instructions.max(1).leading_zeros();
        log2 / self.granularity
    }

    /// The sampling unit an instance maps to: the dense virtual type id
    /// assigned to its `(type, size-class)` pair, handed out in
    /// first-encounter order.
    pub fn unit(&mut self, type_id: TaskTypeId, instructions: u64) -> TaskTypeId {
        let class = self.size_class(instructions);
        let next = self.virtual_ids.len() as u32;
        TaskTypeId(*self.virtual_ids.entry((type_id.0, class)).or_insert(next))
    }

    /// Number of distinct `(type, size-class)` sampling units seen.
    pub fn num_clusters(&self) -> usize {
        self.virtual_ids.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_classes_partition_by_magnitude() {
        let c = ClusterMap::new(2);
        assert_eq!(c.size_class(1), 0);
        assert_eq!(c.size_class(3), 0); // log2=1 -> class 0 at granularity 2
        assert_eq!(c.size_class(4), 1); // log2=2
        assert_eq!(c.size_class(1000), 4); // log2=9
        assert_eq!(c.size_class(1_000_000), 9); // log2=19
    }

    #[test]
    fn units_are_dense_stable_and_injective() {
        let mut c = ClusterMap::new(1);
        let a = c.unit(TaskTypeId(0), 100);
        let b = c.unit(TaskTypeId(0), 100_000);
        let a2 = c.unit(TaskTypeId(0), 110);
        let other = c.unit(TaskTypeId(1), 100);
        assert_ne!(a, b, "orders of magnitude apart => different units");
        assert_eq!(a, a2, "similar sizes share a unit");
        assert_ne!(a, other, "types never share units");
        assert_eq!(c.num_clusters(), 3);
        let ids: Vec<u32> = [a, b, other].iter().map(|t| t.0).collect();
        assert_eq!(ids, vec![0, 1, 2], "dense first-encounter order");
    }

    #[test]
    #[should_panic(expected = "granularity")]
    fn zero_granularity_rejected() {
        ClusterMap::new(0);
    }

    #[test]
    fn concurrency_bands_are_log2_buckets() {
        assert_eq!(concurrency_band(0), 0, "clamped to 1");
        assert_eq!(concurrency_band(1), 0);
        assert_eq!(concurrency_band(2), 1);
        assert_eq!(concurrency_band(3), 1);
        assert_eq!(concurrency_band(4), 2);
        assert_eq!(concurrency_band(7), 2);
        assert_eq!(concurrency_band(8), 3);
        assert_eq!(concurrency_band(u32::MAX), 31);
    }
}
