//! The two-phase stratified (pilot + Neyman allocation) mode controller.
//!
//! Following Ekman's *CPU Simulation Using Two-Phase Stratified Sampling*,
//! the detailed budget is spent in two phases instead of being stopped
//! greedily per cluster:
//!
//! 1. **Pilot**: every `(type, size-class)` stratum runs
//!    [`pilot_samples`](crate::StratifiedConfig::pilot_samples) instances
//!    in detail (or its whole population, whichever is smaller) to
//!    estimate its IPC variance. A stratum that finished its own pilot
//!    fast-forwards on the pilot mean while the others catch up.
//! 2. **Allocation**: once the last stratum completes its pilot, the
//!    remaining budget (`budget − pilot spend`) is distributed by
//!    [`neyman_allocate`] proportional to stratum size × pilot stddev —
//!    one [`FidelityAction::Allocated`] event per stratum — and each
//!    stratum samples its extra allocation in detail before converging.
//!
//! Stratum sizes come from a **priming pass** over the program's instance
//! list ([`StratifiedController::prime`]), so the allocator sees exact
//! `N_h` values and unit ids are assigned in instance-creation order —
//! independent of execution interleaving, which keeps reports
//! byte-identical across worker and detail-thread counts.
//!
//! Convergence is concurrency-banded exactly like the adaptive
//! controller's: a converged stratum whose live concurrency shifts into a
//! band that does not reproduce the stratum's converged CI on its own
//! re-opens once per band ([`FidelityAction::ClusterReopened`]) for a
//! mini-pilot of `pilot_samples` detailed instances.

use taskpoint_runtime::TaskTypeId;
use taskpoint_stats::{Confidence, StreamingMoments};
use taskpoint_telemetry::{FidelityAction, SimEvent, Sink, Telemetry};
use tasksim::{ExecMode, ModeController, SimMode, TaskReport, TaskStart};

use crate::allocate::{neyman_allocate, Stratum};
use crate::ci::relative_ci_half_width;
use crate::cluster::{concurrency_band, ClusterMap};
use crate::config::StratifiedConfig;
use crate::controller::{
    AccuracyReport, AdaptiveStats, ClusterAccuracy, ClusterState, PolicyConfig,
};

/// Per-stratum sampling state on top of the shared [`ClusterState`].
#[derive(Debug, Clone, Default)]
struct StratumState {
    inner: ClusterState,
    /// `N_h`: stratum population from the priming pass.
    size: u64,
    /// Completions in any mode — exhaustion detector.
    completed: u64,
    /// Post-warmup detailed completions counted toward the pilot.
    pilot_done: u64,
    /// Neyman allocation of extra detailed samples (set when the
    /// allocation fires).
    extra: Option<u64>,
    /// Extra detailed completions consumed so far.
    extra_done: u64,
    /// Pooled relative CI achieved at convergence — the yardstick a
    /// shifted band must reproduce to keep the stratum closed.
    target_rel_ci: Option<f64>,
    /// Remaining mini-pilot completions of an in-progress band re-open.
    reopen_left: u64,
}

impl StratumState {
    /// True once the stratum needs no more pilot instances: quota met or
    /// population exhausted.
    fn pilot_complete(&self, pilot_samples: u64) -> bool {
        self.pilot_done >= pilot_samples || self.completed >= self.size
    }
}

/// The two-phase stratified mode controller. Create one per run and
/// [`prime`](Self::prime) it with the program's instances before driving.
#[derive(Debug)]
pub struct StratifiedController {
    config: StratifiedConfig,
    map: ClusterMap,
    /// Stratum state indexed by dense unit id (priming order).
    strata: Vec<StratumState>,
    /// Detailed completions per worker during initial warmup.
    warmup_done: Vec<u64>,
    workers_known: bool,
    warmup_complete: bool,
    primed: bool,
    /// Post-warmup detailed completions spent on pilots (all strata).
    pilot_spend: u64,
    /// Whether the Neyman allocation has fired.
    allocated: bool,
    stats: AdaptiveStats,
    telemetry: Telemetry,
}

impl StratifiedController {
    /// Creates a controller.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`StratifiedConfig::validate`]).
    pub fn new(config: StratifiedConfig) -> Self {
        if let Err(e) = config.validate() {
            panic!("invalid stratified configuration: {e}");
        }
        Self {
            warmup_complete: config.warmup_instances == 0,
            map: ClusterMap::new(config.granularity),
            config,
            strata: Vec::new(),
            warmup_done: Vec::new(),
            workers_known: false,
            primed: false,
            pilot_spend: 0,
            allocated: false,
            stats: AdaptiveStats::default(),
            telemetry: Telemetry::disabled(),
        }
    }

    /// Registers the program's instances — `(type, dynamic instructions)`
    /// in creation order — assigning every stratum its dense unit id and
    /// exact population size `N_h`. Must be called exactly once before
    /// the first [`mode_for_task`](ModeController::mode_for_task).
    pub fn prime(&mut self, instances: impl IntoIterator<Item = (TaskTypeId, u64)>) {
        assert!(!self.primed, "stratified controller primed twice");
        for (type_id, instructions) in instances {
            let unit = self.map.unit(type_id, instructions).0 as usize;
            if unit >= self.strata.len() {
                self.strata.resize_with(unit + 1, StratumState::default);
            }
            self.strata[unit].size += 1;
        }
        self.primed = true;
    }

    /// Attaches a telemetry handle; a recording one makes the controller
    /// emit one [`SimEvent::Fidelity`] per stratum decision (opened,
    /// sampled, allocated, converged, reopened).
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Builder-style form of [`set_telemetry`](Self::set_telemetry).
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// The configuration in use.
    pub fn config(&self) -> &StratifiedConfig {
        &self.config
    }

    /// The telemetry collected so far.
    pub fn stats(&self) -> &AdaptiveStats {
        &self.stats
    }

    /// Number of `(type, size-class)` strata the priming pass found.
    pub fn num_clusters(&self) -> usize {
        self.strata.len()
    }

    /// The per-stratum Neyman allocations of extra detailed samples, in
    /// unit-id order; `None` until the allocation fires.
    pub fn allocations(&self) -> Option<Vec<u64>> {
        if !self.allocated {
            return None;
        }
        Some(self.strata.iter().map(|s| s.extra.unwrap_or(0)).collect())
    }

    /// The per-stratum accuracy picture at this point of the run.
    pub fn report(&self) -> AccuracyReport {
        let clusters: Vec<ClusterAccuracy> = self
            .strata
            .iter()
            .enumerate()
            .map(|(unit, st)| st.inner.accuracy(unit as u32, self.config.confidence))
            .collect();
        AccuracyReport {
            config: PolicyConfig::Stratified(self.config),
            clusters,
            allocated: self.allocations().map(|v| v.iter().sum()),
        }
    }

    /// Consumes the controller, returning telemetry and the accuracy
    /// report.
    pub fn into_parts(self) -> (AdaptiveStats, AccuracyReport) {
        let report = self.report();
        (self.stats, report)
    }

    fn ensure_workers(&mut self, total: u32) {
        if !self.workers_known {
            self.warmup_done = vec![0; total as usize];
            self.workers_known = true;
        }
    }

    /// True when every worker completed the warmup quota.
    fn check_warmup_complete(&self) -> bool {
        self.warmup_done.iter().all(|&c| c >= self.config.warmup_instances)
    }

    /// Fires the Neyman allocation once every stratum finished its pilot:
    /// the remaining budget is split proportional to `N_h · S_h`, one
    /// `Allocated` event per stratum in unit-id order, and strata whose
    /// extra allocation is zero converge on the spot.
    fn try_allocate(&mut self, now: u64) {
        let pilot = self.config.pilot_samples;
        if self.allocated || !self.strata.iter().all(|s| s.pilot_complete(pilot)) {
            return;
        }
        let remaining = self.config.budget.saturating_sub(self.pilot_spend);
        let inputs: Vec<Stratum> = self
            .strata
            .iter()
            .map(|s| Stratum { size: s.size, std_dev: s.inner.valid.sample_std_dev() })
            .collect();
        let alloc = neyman_allocate(remaining, &inputs, 0);
        for (unit, (st, &extra)) in self.strata.iter_mut().zip(&alloc).enumerate() {
            let rel_ci = relative_ci_half_width(&st.inner.valid, self.config.confidence);
            st.extra = Some(extra);
            self.telemetry.event(SimEvent::Fidelity {
                tick: now,
                unit: unit as u32,
                action: FidelityAction::Allocated,
                samples: extra,
                rel_ci,
            });
            if extra == 0 {
                st.inner.converged = true;
                st.target_rel_ci = rel_ci;
                self.telemetry.event(SimEvent::Fidelity {
                    tick: now,
                    unit: unit as u32,
                    action: FidelityAction::Converged,
                    samples: st.inner.valid.count(),
                    rel_ci,
                });
            }
        }
        self.allocated = true;
    }

    /// Closes a stratum, recording the pooled CI it converged at.
    fn converge(
        telemetry: &Telemetry,
        confidence: Confidence,
        unit: u32,
        st: &mut StratumState,
        now: u64,
    ) {
        let rel_ci = relative_ci_half_width(&st.inner.valid, confidence);
        st.inner.converged = true;
        st.target_rel_ci = rel_ci;
        telemetry.event(SimEvent::Fidelity {
            tick: now,
            unit,
            action: FidelityAction::Converged,
            samples: st.inner.valid.count(),
            rel_ci,
        });
    }
}

impl ModeController for StratifiedController {
    fn mode_for_task(&mut self, start: &TaskStart) -> ExecMode {
        assert!(self.primed, "stratified controller must be primed with the program's instances");
        self.ensure_workers(start.total_workers);
        let unit = self.map.unit(start.type_id, start.instructions).0;
        let st = &mut self.strata[unit as usize];
        st.inner.seen += 1;
        if st.inner.seen == 1 {
            self.telemetry.event(SimEvent::Fidelity {
                tick: start.time,
                unit,
                action: FidelityAction::ClusterOpened,
                samples: 0,
                rel_ci: None,
            });
        }
        if !self.warmup_complete {
            return ExecMode::Detailed;
        }
        if !self.allocated {
            // Pilot phase: detailed until the stratum's quota is met,
            // then fast-forward on the pilot mean while the other strata
            // catch up.
            if !st.pilot_complete(self.config.pilot_samples) {
                return ExecMode::Detailed;
            }
            return match st.inner.ipc() {
                Some(ipc) => ExecMode::Fast { ipc },
                None => ExecMode::Detailed,
            };
        }
        if st.inner.converged {
            // Concurrency-band re-opening: a shift into a band that does
            // not reproduce the converged CI on its own samples re-opens
            // the stratum for a mini-pilot — once per band. Strata that
            // converged without a defined CI (fewer than two valid
            // samples) have no yardstick and stay closed.
            if let Some(target) = st.target_rel_ci {
                let band = concurrency_band(start.concurrency);
                let band_met = st
                    .inner
                    .bands
                    .get(&band)
                    .and_then(|m| relative_ci_half_width(m, self.config.confidence))
                    .is_some_and(|ci| ci <= target);
                if !band_met && !st.inner.reopened_bands.contains(&band) {
                    st.inner.reopened_bands.insert(band);
                    st.inner.converged = false;
                    st.reopen_left = self.config.pilot_samples;
                    self.stats.reopened += 1;
                    let band_moments = st.inner.bands.get(&band);
                    self.telemetry.event(SimEvent::Fidelity {
                        tick: start.time,
                        unit,
                        action: FidelityAction::ClusterReopened,
                        samples: band_moments.map_or(0, StreamingMoments::count),
                        rel_ci: band_moments
                            .and_then(|m| relative_ci_half_width(m, self.config.confidence)),
                    });
                    return ExecMode::Detailed;
                }
            }
            if let Some(ipc) = st.inner.ipc() {
                return ExecMode::Fast { ipc };
            }
            st.inner.converged = false;
        }
        ExecMode::Detailed
    }

    fn on_task_complete(&mut self, report: &TaskReport) {
        let unit = self.map.unit(report.type_id, report.instructions).0;
        match report.mode {
            SimMode::Fast => {
                self.stats.fast_tasks += 1;
                self.strata[unit as usize].completed += 1;
            }
            SimMode::Detailed => {
                self.stats.detailed_tasks += 1;
                let ipc = report.ipc();
                let usable = report.instructions > 0 && report.cycles() > 0 && ipc.is_finite();
                if !self.warmup_complete {
                    let st = &mut self.strata[unit as usize];
                    st.completed += 1;
                    if usable {
                        st.inner.all.add(ipc);
                    }
                    self.warmup_done[report.worker.index()] += 1;
                    if self.check_warmup_complete() {
                        self.warmup_complete = true;
                    }
                    return;
                }
                let st = &mut self.strata[unit as usize];
                st.completed += 1;
                if !self.allocated {
                    // Pilot sample (stragglers of pilot-complete strata
                    // included: more variance signal for free).
                    st.pilot_done += 1;
                    self.pilot_spend += 1;
                    if usable {
                        st.inner.add_valid(ipc, report.concurrency);
                        *self.stats.valid_samples.entry(unit).or_insert(0) += 1;
                        self.telemetry.event(SimEvent::Fidelity {
                            tick: report.end,
                            unit,
                            action: FidelityAction::Sampled,
                            samples: st.inner.valid.count(),
                            rel_ci: relative_ci_half_width(&st.inner.valid, self.config.confidence),
                        });
                    }
                    self.try_allocate(report.end);
                    return;
                }
                if st.inner.converged {
                    // Straggler of a converged stratum: fallback moments
                    // only, mirroring the adaptive controller.
                    if usable {
                        st.inner.all.add(ipc);
                    }
                    return;
                }
                if usable {
                    st.inner.add_valid(ipc, report.concurrency);
                    *self.stats.valid_samples.entry(unit).or_insert(0) += 1;
                    self.telemetry.event(SimEvent::Fidelity {
                        tick: report.end,
                        unit,
                        action: FidelityAction::Sampled,
                        samples: st.inner.valid.count(),
                        rel_ci: relative_ci_half_width(&st.inner.valid, self.config.confidence),
                    });
                }
                if st.reopen_left > 0 {
                    // Mini-pilot of a band re-open: completions count so
                    // the stratum closes even on unusable samples.
                    st.reopen_left -= 1;
                    if st.reopen_left == 0 {
                        Self::converge(
                            &self.telemetry,
                            self.config.confidence,
                            unit,
                            st,
                            report.end,
                        );
                    }
                } else {
                    st.extra_done += 1;
                    if st.extra_done >= st.extra.unwrap_or(0) {
                        Self::converge(
                            &self.telemetry,
                            self.config.confidence,
                            unit,
                            st,
                            report.end,
                        );
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taskpoint_runtime::{TaskInstanceId, WorkerId};

    fn start(task: u64, type_id: u32, instructions: u64, concurrency: u32) -> TaskStart {
        TaskStart {
            task: TaskInstanceId(task),
            type_id: TaskTypeId(type_id),
            instructions,
            worker: WorkerId(0),
            time: task * 1000,
            concurrency,
            total_workers: 1,
        }
    }

    fn report(
        task: u64,
        type_id: u32,
        instructions: u64,
        cycles: u64,
        mode: SimMode,
        concurrency: u32,
    ) -> TaskReport {
        TaskReport {
            task: TaskInstanceId(task),
            type_id: TaskTypeId(type_id),
            worker: WorkerId(0),
            start: 0,
            end: cycles,
            instructions,
            mode,
            concurrency,
        }
    }

    /// Drives one instance; returns the decision.
    fn run_one(
        ctrl: &mut StratifiedController,
        task: u64,
        type_id: u32,
        instructions: u64,
        cycles: u64,
        concurrency: u32,
    ) -> ExecMode {
        let mode = ctrl.mode_for_task(&start(task, type_id, instructions, concurrency));
        let sim_mode = match mode {
            ExecMode::Detailed => SimMode::Detailed,
            ExecMode::Fast { .. } => SimMode::Fast,
        };
        ctrl.on_task_complete(&report(task, type_id, instructions, cycles, sim_mode, concurrency));
        mode
    }

    /// A one-type program of `n` equal-size instances.
    fn primed(config: StratifiedConfig, n: u64) -> StratifiedController {
        let mut ctrl = StratifiedController::new(config);
        ctrl.prime((0..n).map(|_| (TaskTypeId(0), 1000)));
        ctrl
    }

    #[test]
    fn pilot_only_when_budget_equals_pilot_spend() {
        // One stratum, pilot == budget: allocation leaves zero extra and
        // the run degenerates to warmup + pilot detailed instances.
        let mut ctrl = primed(StratifiedConfig::new(4, 4), 50);
        let mut detailed = 0;
        for task in 0..50u64 {
            if let ExecMode::Detailed = run_one(&mut ctrl, task, 0, 1000, 500, 1) {
                detailed += 1;
            }
        }
        assert_eq!(detailed, 2 + 4, "warmup + pilot only");
        assert_eq!(ctrl.allocations(), Some(vec![0]));
        assert_eq!(ctrl.stats().fast_tasks, 44);
        let rep = ctrl.report();
        assert_eq!(rep.units(), 1);
        assert_eq!(rep.converged_units(), 1);
    }

    #[test]
    fn extra_budget_follows_the_variance() {
        // Two types, same size: type 0 constant IPC, type 1 noisy. All
        // extra budget must land on type 1 (type 0 is zero-variance).
        let mut ctrl = StratifiedController::new(StratifiedConfig::new(4, 32).with_warmup(0));
        ctrl.prime((0..80).map(|i| (TaskTypeId((i % 2) as u32), 1000)));
        for task in 0..80u64 {
            let ty = (task % 2) as u32;
            let cycles = if ty == 0 {
                500
            } else if task % 4 == 1 {
                300
            } else {
                700
            };
            run_one(&mut ctrl, task, ty, 1000, cycles, 1);
        }
        let alloc = ctrl.allocations().expect("allocation fired");
        assert_eq!(alloc.len(), 2);
        assert_eq!(alloc[0], 0, "zero-variance stratum gets no extra");
        assert_eq!(alloc[1], 32 - 8, "noisy stratum takes the whole remainder");
        let rep = ctrl.report();
        assert_eq!(rep.converged_units(), 2);
        let noisy = &rep.clusters[1];
        assert_eq!(noisy.samples, 4 + 24, "pilot + extra all landed");
    }

    #[test]
    fn strata_split_by_size_class() {
        let mut ctrl = StratifiedController::new(StratifiedConfig::new(2, 8).with_warmup(0));
        ctrl.prime((0..40).map(|i| (TaskTypeId(0), if i % 2 == 0 { 200 } else { 100_000 })));
        assert_eq!(ctrl.num_clusters(), 2, "one type, two size classes");
        for task in 0..40u64 {
            let instrs = if task % 2 == 0 { 200 } else { 100_000 };
            run_one(&mut ctrl, task, 0, instrs, instrs / 2, 1);
        }
        assert_eq!(ctrl.report().units(), 2);
    }

    #[test]
    fn concurrency_shift_reopens_a_converged_stratum() {
        let mut ctrl = primed(StratifiedConfig::new(4, 8).with_warmup(0), 60);
        let mut task = 0u64;
        // Noisy stratum at concurrency 1 through pilot + extra.
        for _ in 0..20 {
            let cycles = if task.is_multiple_of(2) { 400 } else { 600 };
            run_one(&mut ctrl, task, 0, 1000, cycles, 1);
            task += 1;
        }
        assert!(ctrl.report().clusters[0].converged);
        assert_eq!(ctrl.stats().reopened, 0);
        // Shift to concurrency 4 (band 2): no samples there, so the
        // stratum re-opens for a mini-pilot.
        let mode = run_one(&mut ctrl, task, 0, 1000, 400, 4);
        task += 1;
        assert_eq!(mode, ExecMode::Detailed);
        assert_eq!(ctrl.stats().reopened, 1);
        for _ in 0..4 {
            let cycles = if task.is_multiple_of(2) { 400 } else { 600 };
            run_one(&mut ctrl, task, 0, 1000, cycles, 4);
            task += 1;
        }
        let rep = ctrl.report();
        assert!(rep.clusters[0].converged, "mini-pilot closed the stratum again");
        assert_eq!(rep.reopened_bands(), 1);
        // Same band again: once per band.
        let mode = run_one(&mut ctrl, task, 0, 1000, 500, 4);
        assert!(matches!(mode, ExecMode::Fast { .. }));
        assert_eq!(ctrl.stats().reopened, 1);
    }

    #[test]
    fn constant_concurrency_never_reopens() {
        let mut ctrl = primed(StratifiedConfig::new(4, 16).with_warmup(0), 200);
        for task in 0..200u64 {
            let cycles = if task.is_multiple_of(2) { 400 } else { 600 };
            run_one(&mut ctrl, task, 0, 1000, cycles, 2);
        }
        assert_eq!(ctrl.stats().reopened, 0);
        assert_eq!(ctrl.report().reopened_bands(), 0);
    }

    #[test]
    #[should_panic(expected = "must be primed")]
    fn unprimed_controller_is_rejected() {
        let mut ctrl = StratifiedController::new(StratifiedConfig::new(4, 8));
        ctrl.mode_for_task(&start(0, 0, 1000, 1));
    }

    #[test]
    #[should_panic(expected = "budget")]
    fn invalid_config_rejected() {
        StratifiedController::new(StratifiedConfig::new(8, 4));
    }
}
