//! Neyman allocation of a detailed-sampling budget across strata.
//!
//! Two-phase stratified sampling (Ekman's *CPU Simulation Using Two-Phase
//! Stratified Sampling*) spends a cheap pilot per stratum to estimate its
//! variance, then allocates the remaining budget proportional to
//! `N_h · S_h` — stratum size times pilot standard deviation — which
//! minimizes the variance of the stratified mean at a fixed total budget.
//! This module is the pure integer allocator: it turns the real-valued
//! Neyman shares into exact integer sample counts.
//!
//! The rounding scheme is largest-remainder with a deterministic
//! `(remainder desc, index asc)` tiebreak. With a fixed budget and a
//! single stratum's weight increasing, largest remainder is monotone in
//! that stratum's allocation (the population paradox needs two weights
//! moving in opposite directions), which is the invariant the workspace
//! property suite pins.

/// One stratum as seen by the allocator: its population size and the
/// pilot estimate of its standard deviation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stratum {
    /// `N_h`: number of instances in the stratum.
    pub size: u64,
    /// `S_h`: pilot sample standard deviation of the stratum's IPC.
    /// Non-finite or negative values are treated as zero weight.
    pub std_dev: f64,
}

impl Stratum {
    /// The Neyman weight `N_h · S_h` (zero when the stddev is unusable).
    fn weight(&self) -> f64 {
        if self.std_dev.is_finite() && self.std_dev > 0.0 {
            self.size as f64 * self.std_dev
        } else {
            0.0
        }
    }
}

/// Distributes `budget` detailed samples across `strata` proportional to
/// `size · std_dev`, with every stratum guaranteed at least `floor`
/// samples.
///
/// Invariants (pinned by `tests/stratified_properties.rs`):
///
/// * when at least one stratum has positive weight and
///   `budget >= floor · k`, the allocations sum to **exactly** `budget`;
/// * zero-weight strata (zero, non-finite or negative stddev, or zero
///   size) receive **exactly** `floor`;
/// * raising one stratum's stddev at fixed size (others unchanged) never
///   decreases that stratum's allocation;
/// * when every stratum has zero weight the extra budget is left unspent
///   (every stratum gets exactly `floor`) — there is no variance signal
///   to follow;
/// * when `budget < floor · k` the floors themselves are handed out in
///   index order until the budget runs dry (never exceeding `budget`).
pub fn neyman_allocate(budget: u64, strata: &[Stratum], floor: u64) -> Vec<u64> {
    let k = strata.len() as u64;
    if k == 0 {
        return Vec::new();
    }
    // Not enough budget for the floors: index order, budget-exact.
    if floor > 0 && budget < floor.saturating_mul(k) {
        let mut left = budget;
        return strata
            .iter()
            .map(|_| {
                let take = floor.min(left);
                left -= take;
                take
            })
            .collect();
    }
    let mut alloc = vec![floor; strata.len()];
    let remaining = budget - floor * k;
    let total_weight: f64 = strata.iter().map(Stratum::weight).sum();
    if remaining == 0 || total_weight <= 0.0 {
        return alloc;
    }
    // Largest-remainder rounding of the exact Neyman shares.
    let mut handed = 0u64;
    let mut remainders: Vec<(usize, f64)> = Vec::with_capacity(strata.len());
    for (i, s) in strata.iter().enumerate() {
        let exact = remaining as f64 * (s.weight() / total_weight);
        let base = exact.floor() as u64;
        alloc[i] += base;
        handed += base;
        remainders.push((i, exact - base as f64));
    }
    // Floating-point drift can only leave `handed` at or barely past
    // `remaining`; claw back from the largest bases if it overshot.
    while handed > remaining {
        let (i, _) = alloc
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
            .expect("non-empty strata");
        alloc[i] -= 1;
        handed -= 1;
    }
    remainders.sort_by(|a, b| {
        b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal).then(a.0.cmp(&b.0))
    });
    let mut leftover = remaining - handed;
    for &(i, w) in &remainders {
        if leftover == 0 {
            break;
        }
        // Zero-weight strata stay at exactly the floor even during the
        // leftover pass.
        if strata[i].weight() > 0.0 || w > 0.0 {
            alloc[i] += 1;
            leftover -= 1;
        }
    }
    // If every remainder-eligible stratum was exhausted (cannot happen
    // with a positive total weight, but be exact): hand the rest to the
    // heaviest stratum.
    if leftover > 0 {
        let (i, _) = strata
            .iter()
            .enumerate()
            .max_by(|a, b| {
                a.1.weight().partial_cmp(&b.1.weight()).unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("non-empty strata");
        alloc[i] += leftover;
    }
    alloc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(size: u64, std_dev: f64) -> Stratum {
        Stratum { size, std_dev }
    }

    #[test]
    fn conserves_the_budget_exactly() {
        let strata = [s(100, 1.0), s(50, 2.0), s(10, 0.5)];
        for budget in [0u64, 1, 7, 100, 1000, 12345] {
            let alloc = neyman_allocate(budget, &strata, 0);
            assert_eq!(alloc.iter().sum::<u64>(), budget, "budget {budget}");
        }
    }

    #[test]
    fn proportional_to_size_times_stddev() {
        // Weights 100, 200, 100 → shares 1/4, 1/2, 1/4 of 400.
        let alloc = neyman_allocate(400, &[s(100, 1.0), s(100, 2.0), s(200, 0.5)], 0);
        assert_eq!(alloc, vec![100, 200, 100]);
    }

    #[test]
    fn zero_variance_strata_get_exactly_the_floor() {
        let alloc = neyman_allocate(100, &[s(100, 0.0), s(100, 1.0), s(100, f64::NAN)], 3);
        assert_eq!(alloc[0], 3);
        assert_eq!(alloc[2], 3);
        assert_eq!(alloc.iter().sum::<u64>(), 100);
    }

    #[test]
    fn all_zero_weights_leave_the_extra_budget_unspent() {
        let alloc = neyman_allocate(100, &[s(10, 0.0), s(20, 0.0)], 2);
        assert_eq!(alloc, vec![2, 2], "no variance signal: floors only");
    }

    #[test]
    fn underfunded_floors_are_handed_out_in_index_order() {
        let alloc = neyman_allocate(5, &[s(10, 1.0), s(10, 1.0), s(10, 1.0)], 2);
        assert_eq!(alloc, vec![2, 2, 1]);
        assert_eq!(neyman_allocate(0, &[s(10, 1.0)], 2), vec![0]);
    }

    #[test]
    fn rounding_ties_break_by_index() {
        // Three identical strata, one extra sample: lowest index wins.
        let alloc = neyman_allocate(1, &[s(10, 1.0), s(10, 1.0), s(10, 1.0)], 0);
        assert_eq!(alloc, vec![1, 0, 0]);
    }

    #[test]
    fn monotone_in_stddev_at_fixed_size() {
        let base = [s(100, 1.0), s(100, 1.5), s(100, 0.7)];
        let before = neyman_allocate(97, &base, 1);
        let mut raised = base;
        raised[2].std_dev = 2.2;
        let after = neyman_allocate(97, &raised, 1);
        assert!(after[2] >= before[2], "{after:?} vs {before:?}");
        assert_eq!(after.iter().sum::<u64>(), 97);
    }

    #[test]
    fn empty_strata_yield_empty_allocation() {
        assert_eq!(neyman_allocate(100, &[], 3), Vec::<u64>::new());
    }
}
