//! Property tests for [`StreamingMoments`]: merging arbitrary partitions
//! of a stream must reproduce the whole-stream moments.

use proptest::prelude::*;
use taskpoint_stats::StreamingMoments;

proptest! {
    #[test]
    fn merged_moments_equal_whole_stream(
        xs in prop::collection::vec(-1e4f64..1e4, 0..300),
        split_frac in 0.0f64..1.0,
    ) {
        let whole: StreamingMoments = xs.iter().copied().collect();
        let split = ((xs.len() as f64) * split_frac) as usize;
        let mut left: StreamingMoments = xs[..split].iter().copied().collect();
        let right: StreamingMoments = xs[split..].iter().copied().collect();
        left.merge(&right);
        prop_assert_eq!(left.count(), whole.count());
        prop_assert!((left.mean() - whole.mean()).abs() < 1e-7);
        prop_assert!(
            (left.sample_variance() - whole.sample_variance()).abs()
                < 1e-6 * (1.0 + whole.sample_variance())
        );
    }

    #[test]
    fn three_way_merge_is_order_insensitive(
        xs in prop::collection::vec(0.01f64..100.0, 3..120),
        a in 1usize..40,
        b in 1usize..40,
    ) {
        let a = a.min(xs.len() - 2);
        let b = (a + b).min(xs.len() - 1);
        let parts: [StreamingMoments; 3] = [
            xs[..a].iter().copied().collect(),
            xs[a..b].iter().copied().collect(),
            xs[b..].iter().copied().collect(),
        ];
        let whole: StreamingMoments = xs.iter().copied().collect();
        // Merge in two different orders; both must match the whole stream.
        let mut fwd = parts[0];
        fwd.merge(&parts[1]);
        fwd.merge(&parts[2]);
        let mut rev = parts[2];
        rev.merge(&parts[1]);
        rev.merge(&parts[0]);
        for merged in [fwd, rev] {
            prop_assert_eq!(merged.count(), whole.count());
            prop_assert!((merged.mean() - whole.mean()).abs() < 1e-7);
            prop_assert!(
                (merged.sample_variance() - whole.sample_variance()).abs()
                    < 1e-6 * (1.0 + whole.sample_variance())
            );
        }
    }

    #[test]
    fn std_error_shrinks_with_replication(
        xs in prop::collection::vec(0.5f64..2.0, 2..50),
    ) {
        // Duplicating a stream k times divides the standard error by ~sqrt(k)
        // when the variance is nonzero; at minimum it must not grow.
        let once: StreamingMoments = xs.iter().copied().collect();
        let four: StreamingMoments =
            xs.iter().copied().chain(xs.iter().copied()).chain(xs.iter().copied())
                .chain(xs.iter().copied()).collect();
        let (Some(se1), Some(se4)) = (once.std_error(), four.std_error()) else {
            return Err(TestCaseError::fail("std_error missing"));
        };
        prop_assert!(se4 <= se1 + 1e-12);
    }
}
