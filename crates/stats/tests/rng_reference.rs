//! Determinism regression tests pinning `taskpoint_stats::rng` to the
//! published reference test vectors.
//!
//! Every workload in this repository is generated procedurally from these
//! generators, so their output must stay bit-for-bit identical across
//! platforms, architectures and compiler versions — otherwise "the same
//! benchmark" would silently mean different programs on different machines
//! and no error/speedup figure would be comparable. If any test in this
//! file fails, the generators changed behavior and every recorded result
//! in `results/` is invalidated.

use taskpoint_stats::rng::{mix_seed, splitmix64, Xoshiro256pp};

/// First outputs of the public-domain SplitMix64 reference (Steele et al.,
/// as distributed by Vigna) for initial state 0. These exact values appear
/// in the test suites of many independent implementations.
#[test]
fn splitmix64_matches_published_vector_seed_zero() {
    let expected: [u64; 5] = [
        0xe220_a839_7b1d_cdaf,
        0x6e78_9e6a_a1b9_65f4,
        0x06c4_5d18_8009_454f,
        0xf88b_b8a8_724c_81ec,
        0x1b39_896a_51a8_749b,
    ];
    let mut state = 0u64;
    for (i, &want) in expected.iter().enumerate() {
        assert_eq!(splitmix64(&mut state), want, "splitmix64 output {i}");
    }
}

/// SplitMix64 single-step check for a nonzero seed (vector used by the
/// `rand_core` test suite).
#[test]
fn splitmix64_matches_published_vector_seed_1234567() {
    let mut state = 1_234_567u64;
    assert_eq!(splitmix64(&mut state), 6_457_827_717_110_365_317);
}

/// First ten outputs of the xoshiro256++ reference C implementation for
/// state `[1, 2, 3, 4]` — the vector shipped with `rand_xoshiro`.
#[test]
fn xoshiro256pp_matches_published_vector() {
    let expected: [u64; 10] = [
        41_943_041,
        58_720_359,
        3_588_806_011_781_223,
        3_591_011_842_654_386,
        9_228_616_714_210_784_205,
        9_973_669_472_204_895_162,
        14_011_001_112_246_962_877,
        12_406_186_145_184_390_807,
        15_849_039_046_786_891_736,
        10_450_023_813_501_588_000,
    ];
    let mut rng = Xoshiro256pp::from_state([1, 2, 3, 4]);
    for (i, &want) in expected.iter().enumerate() {
        assert_eq!(rng.next_u64(), want, "xoshiro256++ output {i}");
    }
}

/// The composition this crate actually uses: SplitMix64 expands the `u64`
/// seed into the 256-bit state, then xoshiro256++ generates. The expected
/// values follow from the two published algorithms above; pinning them
/// guards the seeding path itself.
#[test]
fn seed_from_u64_composition_is_pinned() {
    let expected: [u64; 6] = [
        5_987_356_902_031_041_503,
        7_051_070_477_665_621_255,
        6_633_766_593_972_829_180,
        211_316_841_551_650_330,
        9_136_120_204_379_184_874,
        379_361_710_973_160_858,
    ];
    let mut rng = Xoshiro256pp::seed_from_u64(0);
    for (i, &want) in expected.iter().enumerate() {
        assert_eq!(rng.next_u64(), want, "seed_from_u64(0) output {i}");
    }
}

/// `mix_seed` feeds every per-instance trace seed; its outputs are part of
/// the reproducibility contract even though it is this crate's own
/// construction (pinned values computed once and frozen).
#[test]
fn mix_seed_outputs_are_pinned() {
    assert_eq!(mix_seed(&[]), 3_246_858_695_411_730_098);
    assert_eq!(mix_seed(&[0]), 17_864_507_281_744_500_190);
    assert_eq!(mix_seed(&[1, 2, 3]), 15_050_480_356_514_305_467);
}

/// Derived distributions ride on `next_u64`; spot-check that the floating
/// point path is also identical (same bits, not just "close").
#[test]
fn f64_path_is_bit_identical() {
    let mut rng = Xoshiro256pp::seed_from_u64(0);
    // 5987356902031041503 >> 11 = 2923514112319844 as 53-bit mantissa.
    assert_eq!(
        rng.next_f64().to_bits(),
        (2_923_514_112_319_844f64 / 9_007_199_254_740_992f64).to_bits()
    );
}
