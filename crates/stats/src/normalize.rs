//! Per-group normalization.
//!
//! Figures 1 and 5 of the paper normalize the IPC of every task instance to
//! the *mean IPC of its task type* and then plot the percent deviation. This
//! module implements that transformation for arbitrary group keys.

use std::collections::HashMap;
use std::hash::Hash;

/// Normalizes `(group, value)` samples to percent deviation from their
/// group mean: `100 * (value / group_mean - 1)`.
///
/// Groups whose mean is zero (or that contain no finite values) are skipped.
/// The output preserves the input order of the surviving samples.
///
/// ```
/// use taskpoint_stats::normalize_by_group;
///
/// let samples = [("a", 1.0), ("a", 3.0), ("b", 10.0)];
/// let devs = normalize_by_group(samples.iter().copied());
/// // group "a" has mean 2.0 -> deviations -50% and +50%; "b" -> 0%.
/// assert_eq!(devs, vec![-50.0, 50.0, 0.0]);
/// ```
pub fn normalize_by_group<K, I>(samples: I) -> Vec<f64>
where
    K: Eq + Hash + Clone,
    I: IntoIterator<Item = (K, f64)>,
{
    let samples: Vec<(K, f64)> = samples.into_iter().collect();
    let mut sums: HashMap<K, (f64, u64)> = HashMap::new();
    for (k, v) in &samples {
        if v.is_finite() {
            let e = sums.entry(k.clone()).or_insert((0.0, 0));
            e.0 += *v;
            e.1 += 1;
        }
    }
    let means: HashMap<K, f64> = sums
        .into_iter()
        .filter(|(_, (_, n))| *n > 0)
        .map(|(k, (s, n))| (k, s / n as f64))
        .collect();
    samples
        .into_iter()
        .filter_map(|(k, v)| {
            let mean = *means.get(&k)?;
            if !v.is_finite() || mean == 0.0 {
                None
            } else {
                Some(100.0 * (v / mean - 1.0))
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_group_centered_on_zero() {
        let devs = normalize_by_group([(0u32, 2.0), (0, 2.0), (0, 2.0)]);
        assert_eq!(devs, vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn deviations_sum_to_zero_per_group() {
        let devs = normalize_by_group([(0u32, 1.0), (0, 2.0), (0, 3.0), (1, 5.0), (1, 15.0)]);
        let total: f64 = devs.iter().sum();
        assert!(total.abs() < 1e-9);
        assert_eq!(devs.len(), 5);
    }

    #[test]
    fn zero_mean_group_is_dropped() {
        let devs = normalize_by_group([("z", 0.0), ("z", 0.0), ("ok", 4.0)]);
        assert_eq!(devs, vec![0.0]);
    }

    #[test]
    fn non_finite_values_are_dropped() {
        let devs = normalize_by_group([("a", f64::NAN), ("a", 2.0), ("a", 4.0)]);
        assert_eq!(devs.len(), 2);
        // mean over finite values is 3.0
        assert!((devs[0] - (-100.0 / 3.0)).abs() < 1e-9);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let devs = normalize_by_group(Vec::<(u8, f64)>::new());
        assert!(devs.is_empty());
    }
}
