//! Deterministic pseudo-random number generation.
//!
//! Workload generation, the synthetic instruction streams and the system
//! noise model must be reproducible bit-for-bit across runs and platforms —
//! the sampled and the detailed simulation of the same benchmark must see
//! *identical* task instances or the error metric would be meaningless.
//! To guarantee that independently of any external crate's stream stability,
//! this module implements xoshiro256++ (Blackman & Vigna) and the SplitMix64
//! seeding procedure its authors recommend.

use serde::{Deserialize, Serialize};

/// SplitMix64 step; used for seeding and as a cheap stateless hash.
///
/// ```
/// use taskpoint_stats::rng::splitmix64;
/// // Reference value from the public-domain SplitMix64 test vector.
/// let mut state = 0x9E3779B97F4A7C15u64;
/// let _ = splitmix64(&mut state);
/// ```
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Mixes several integers into one seed; handy for deriving per-instance
/// seeds from `(benchmark_seed, type_id, instance_id)` so every task
/// instance has an independent but fully reproducible stream.
pub fn mix_seed(parts: &[u64]) -> u64 {
    let mut state = 0x853C_49E6_748F_EA9Bu64;
    let mut acc = 0u64;
    for &p in parts {
        state ^= p;
        acc ^= splitmix64(&mut state).rotate_left(17);
    }
    // One more scramble so short inputs do not map to small outputs.
    let mut st = acc ^ 0xD1B5_4A32_D192_ED03;
    splitmix64(&mut st)
}

/// xoshiro256++ PRNG: fast, 256-bit state, passes BigCrush.
///
/// ```
/// use taskpoint_stats::rng::Xoshiro256pp;
/// let mut a = Xoshiro256pp::seed_from_u64(7);
/// let mut b = Xoshiro256pp::seed_from_u64(7);
/// assert_eq!(a.next_u64(), b.next_u64()); // deterministic
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Creates a generator from an explicit 256-bit state, exactly as the
    /// reference C implementation is initialized. Mainly useful for
    /// checking this implementation against the published test vectors;
    /// prefer [`seed_from_u64`](Self::seed_from_u64) for well-mixed states.
    ///
    /// # Panics
    ///
    /// Panics if the state is all zeros (the one invalid xoshiro state).
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(s != [0, 0, 0, 0], "xoshiro256++ state must not be all zero");
        Self { s }
    }

    /// Seeds the full 256-bit state from a single `u64` via SplitMix64,
    /// as recommended by the xoshiro authors.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s =
            [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)];
        // All-zero state is invalid; SplitMix64 cannot produce four zeros
        // from any seed, but guard anyway.
        if s == [0, 0, 0, 0] {
            Self { s: [1, 2, 3, 4] }
        } else {
            Self { s }
        }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)` via Lemire's multiply-shift method
    /// (unbiased thanks to the rejection loop).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut l = m as u64;
        if l < bound {
            let t = bound.wrapping_neg() % bound;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn next_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        if lo == hi {
            return lo;
        }
        lo + self.next_below(hi - lo + 1)
    }

    /// Approximately normal deviate with the given mean and standard
    /// deviation (sum of 12 uniforms; adequate for noise modelling, cheap
    /// and bounded to ±6σ which conveniently avoids pathological outliers).
    pub fn next_normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        let mut acc = 0.0;
        for _ in 0..12 {
            acc += self.next_f64();
        }
        mean + (acc - 6.0) * std_dev
    }

    /// Log-uniform value in `[lo, hi]`: uniform in log space. Used for the
    /// heavy-tailed instance sizes of freqmine (490 .. 11M instructions).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < lo <= hi`.
    pub fn next_log_uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo > 0.0 && lo <= hi, "invalid log-uniform range [{lo}, {hi}]");
        if lo == hi {
            return lo;
        }
        (self.next_f64() * (hi.ln() - lo.ln()) + lo.ln()).exp()
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Xoshiro256pp::seed_from_u64(123);
        let mut b = Xoshiro256pp::seed_from_u64(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Xoshiro256pp::seed_from_u64(1);
        let mut b = Xoshiro256pp::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Xoshiro256pp::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_below_respects_bound_and_covers() {
        let mut r = Xoshiro256pp::seed_from_u64(5);
        let mut seen = [false; 7];
        for _ in 0..10_000 {
            let x = r.next_below(7) as usize;
            assert!(x < 7);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn next_range_inclusive() {
        let mut r = Xoshiro256pp::seed_from_u64(5);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..10_000 {
            let x = r.next_range(3, 5);
            assert!((3..=5).contains(&x));
            lo_seen |= x == 3;
            hi_seen |= x == 5;
        }
        assert!(lo_seen && hi_seen);
        assert_eq!(r.next_range(9, 9), 9);
    }

    #[test]
    fn normal_has_roughly_right_moments() {
        let mut r = Xoshiro256pp::seed_from_u64(17);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| r.next_normal(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn log_uniform_stays_in_range_and_spreads() {
        let mut r = Xoshiro256pp::seed_from_u64(23);
        let mut below_geo_mid = 0usize;
        let n = 20_000;
        for _ in 0..n {
            let x = r.next_log_uniform(490.0, 11_000_000.0);
            assert!((490.0..=11_000_000.0).contains(&x));
            // geometric midpoint: half the mass should be below it
            if x < (490.0f64 * 11_000_000.0).sqrt() {
                below_geo_mid += 1;
            }
        }
        let frac = below_geo_mid as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.02, "frac {frac}");
    }

    #[test]
    fn mix_seed_is_order_sensitive() {
        assert_ne!(mix_seed(&[1, 2, 3]), mix_seed(&[3, 2, 1]));
        assert_ne!(mix_seed(&[1]), mix_seed(&[1, 0]));
        assert_eq!(mix_seed(&[4, 5]), mix_seed(&[4, 5]));
    }

    #[test]
    fn bernoulli_frequency_close_to_p() {
        let mut r = Xoshiro256pp::seed_from_u64(31);
        let hits = (0..100_000).filter(|_| r.next_bool(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.01, "frac {frac}");
    }
}
