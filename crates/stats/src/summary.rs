//! Streaming univariate summaries (Welford's online algorithm).

use serde::{Deserialize, Serialize};

/// A streaming summary of a sequence of `f64` samples.
///
/// Uses Welford's online algorithm, so it is numerically stable and does not
/// store samples. Collecting an iterator of `f64` yields a `Summary`:
///
/// ```
/// use taskpoint_stats::Summary;
///
/// let s: Summary = [1.0, 2.0, 3.0, 4.0].into_iter().collect();
/// assert_eq!(s.count(), 4);
/// assert_eq!(s.mean(), 2.5);
/// assert_eq!(s.min(), 1.0);
/// assert_eq!(s.max(), 4.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl Default for Summary {
    fn default() -> Self {
        Self::new()
    }
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Self { count: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY, sum: 0.0 }
    }

    /// Adds one sample.
    ///
    /// Non-finite samples are ignored (they would poison every derived
    /// statistic); callers that care can check [`Summary::count`].
    pub fn add(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.count += 1;
        self.sum += x;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Merges another summary into this one (parallel Welford merge).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of (finite) samples added.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of samples. Zero when empty.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean. Zero when empty.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance. Zero for fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample (unbiased) variance. Zero for fewer than two samples.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Coefficient of variation (std dev / mean); zero if the mean is zero.
    pub fn cv(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.std_dev() / self.mean.abs()
        }
    }

    /// Smallest sample, or `+inf` when empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample, or `-inf` when empty.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// True if no samples have been added.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Summary::new();
        for x in iter {
            s.add(x);
        }
        s
    }
}

impl Extend<f64> for Summary {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.add(x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_neutral() {
        let s = Summary::new();
        assert!(s.is_empty());
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.sum(), 0.0);
    }

    #[test]
    fn mean_and_variance_match_reference() {
        let s: Summary = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0].into_iter().collect();
        assert_eq!(s.mean(), 5.0);
        assert_eq!(s.variance(), 4.0);
        assert_eq!(s.std_dev(), 2.0);
        assert!((s.sample_variance() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn min_max_track_extremes() {
        let s: Summary = [3.0, -1.0, 10.0, 2.5].into_iter().collect();
        assert_eq!(s.min(), -1.0);
        assert_eq!(s.max(), 10.0);
    }

    #[test]
    fn non_finite_samples_are_ignored() {
        let mut s = Summary::new();
        s.add(1.0);
        s.add(f64::NAN);
        s.add(f64::INFINITY);
        s.add(3.0);
        assert_eq!(s.count(), 2);
        assert_eq!(s.mean(), 2.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.37).sin() * 5.0 + 10.0).collect();
        let whole: Summary = data.iter().copied().collect();
        let mut left: Summary = data[..400].iter().copied().collect();
        let right: Summary = data[400..].iter().copied().collect();
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s: Summary = [1.0, 2.0].into_iter().collect();
        let before = s;
        s.merge(&Summary::new());
        assert_eq!(s, before);
        let mut e = Summary::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn cv_of_constant_sequence_is_zero() {
        let s: Summary = std::iter::repeat_n(4.2, 10).collect();
        assert!(s.cv().abs() < 1e-12);
    }

    #[test]
    fn extend_appends_samples() {
        let mut s: Summary = [1.0].into_iter().collect();
        s.extend([2.0, 3.0]);
        assert_eq!(s.count(), 3);
        assert_eq!(s.mean(), 2.0);
    }
}
