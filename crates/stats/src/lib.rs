//! Statistics utilities for the TaskPoint reproduction.
//!
//! This crate bundles the small amount of statistics the paper's evaluation
//! relies on:
//!
//! * streaming summaries ([`Summary`]) for mean / variance / extrema,
//! * percentiles and boxplot statistics ([`BoxplotStats`]) used to reproduce
//!   the IPC-variation figures (Fig. 1 and Fig. 5),
//! * per-group normalization ([`normalize::normalize_by_group`]) — the paper
//!   normalizes every task instance's IPC to the mean IPC of its task type,
//! * error and speedup metrics ([`error`]) for the accuracy evaluation
//!   (Figs. 6–10),
//! * streaming moments ([`StreamingMoments`]) and pinned Student-t
//!   critical values ([`student_t_critical`]) — the statistical substrate
//!   of the confidence-driven adaptive sampling policy,
//! * a tiny deterministic RNG ([`rng::Xoshiro256pp`]) so workload generation
//!   and the simulator's noise model are reproducible bit-for-bit without
//!   depending on the `rand` crate's stream stability.
//!
//! # Example
//!
//! ```
//! use taskpoint_stats::{BoxplotStats, Summary};
//!
//! let ipcs = [0.98, 1.01, 1.00, 0.99, 1.02, 0.97, 1.05];
//! let summary: Summary = ipcs.iter().copied().collect();
//! assert!((summary.mean() - 1.0028).abs() < 1e-3);
//!
//! let box_stats = BoxplotStats::from_samples(&ipcs).unwrap();
//! assert!(box_stats.median >= box_stats.q1 && box_stats.median <= box_stats.q3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod moments;
pub mod normalize;
pub mod percentile;
pub mod rng;
pub mod student_t;
pub mod summary;

pub use error::{geometric_mean, relative_error_percent, speedup, ErrorSummary};
pub use moments::StreamingMoments;
pub use normalize::normalize_by_group;
pub use percentile::{percentile, BoxplotStats};
pub use student_t::{student_t_critical, Confidence};
pub use summary::Summary;
