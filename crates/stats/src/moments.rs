//! Minimal streaming moments (Welford) for confidence-interval estimation.
//!
//! [`StreamingMoments`] is the accumulator the adaptive-accuracy subsystem
//! keeps per sampling cluster: count, mean and the centered second moment
//! `M2`, updated online in O(1) per sample and mergeable across partial
//! streams (Chan's parallel update). It deliberately carries *only* what a
//! confidence interval needs — unlike [`Summary`](crate::Summary) there is
//! no min/max/sum baggage, so a simulation tracking thousands of clusters
//! pays three `f64`s and a counter each.

use serde::{Deserialize, Serialize};

/// Streaming count / mean / variance accumulator (Welford's algorithm).
///
/// ```
/// use taskpoint_stats::StreamingMoments;
///
/// let mut m = StreamingMoments::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     m.add(x);
/// }
/// assert_eq!(m.count(), 8);
/// assert_eq!(m.mean(), 5.0);
/// assert!((m.sample_variance() - 32.0 / 7.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct StreamingMoments {
    count: u64,
    mean: f64,
    m2: f64,
}

impl StreamingMoments {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one sample. Non-finite samples are ignored (they would poison
    /// every derived statistic).
    pub fn add(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Merges another accumulator into this one (Chan's parallel update).
    /// Merging partial streams yields the same moments as accumulating the
    /// whole stream (pinned by a workspace property test).
    pub fn merge(&mut self, other: &StreamingMoments) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
    }

    /// Number of (finite) samples accumulated.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when no samples have been accumulated.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Arithmetic mean. Zero when empty.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sample (unbiased, `n-1` denominator) variance. Zero for fewer than
    /// two samples.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            // Rounding can push m2 fractionally below zero on constant
            // streams; clamp so the square root below stays real.
            (self.m2 / (self.count - 1) as f64).max(0.0)
        }
    }

    /// Sample standard deviation.
    pub fn sample_std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Standard error of the mean (`s / sqrt(n)`), or `None` for fewer
    /// than two samples (the sample variance is undefined).
    pub fn std_error(&self) -> Option<f64> {
        if self.count < 2 {
            None
        } else {
            Some(self.sample_std_dev() / (self.count as f64).sqrt())
        }
    }

    /// Discards all samples.
    pub fn clear(&mut self) {
        *self = Self::default();
    }
}

impl FromIterator<f64> for StreamingMoments {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut m = StreamingMoments::new();
        for x in iter {
            m.add(x);
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_moments_are_neutral() {
        let m = StreamingMoments::new();
        assert!(m.is_empty());
        assert_eq!(m.count(), 0);
        assert_eq!(m.mean(), 0.0);
        assert_eq!(m.sample_variance(), 0.0);
        assert_eq!(m.std_error(), None);
    }

    #[test]
    fn matches_textbook_reference() {
        let m: StreamingMoments = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0].into_iter().collect();
        assert_eq!(m.mean(), 5.0);
        assert!((m.sample_variance() - 32.0 / 7.0).abs() < 1e-12);
        let se = m.std_error().unwrap();
        assert!((se - (32.0f64 / 7.0).sqrt() / 8.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn single_sample_has_no_std_error() {
        let mut m = StreamingMoments::new();
        m.add(3.0);
        assert_eq!(m.count(), 1);
        assert_eq!(m.mean(), 3.0);
        assert_eq!(m.std_error(), None);
    }

    #[test]
    fn non_finite_samples_are_ignored() {
        let mut m = StreamingMoments::new();
        m.add(1.0);
        m.add(f64::NAN);
        m.add(f64::INFINITY);
        m.add(3.0);
        assert_eq!(m.count(), 2);
        assert_eq!(m.mean(), 2.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..500).map(|i| (i as f64 * 0.61).cos() * 3.0 + 7.0).collect();
        let whole: StreamingMoments = data.iter().copied().collect();
        let mut left: StreamingMoments = data[..123].iter().copied().collect();
        let right: StreamingMoments = data[123..].iter().copied().collect();
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.sample_variance() - whole.sample_variance()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut m: StreamingMoments = [1.0, 2.0].into_iter().collect();
        let before = m;
        m.merge(&StreamingMoments::new());
        assert_eq!(m, before);
        let mut e = StreamingMoments::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn constant_stream_has_zero_variance() {
        let m: StreamingMoments = std::iter::repeat_n(4.25, 1000).collect();
        assert_eq!(m.sample_variance(), 0.0);
        assert_eq!(m.std_error(), Some(0.0));
    }

    #[test]
    fn clear_resets() {
        let mut m: StreamingMoments = [1.0, 5.0].into_iter().collect();
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m, StreamingMoments::new());
    }
}
