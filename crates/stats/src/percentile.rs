//! Percentiles and boxplot statistics.
//!
//! The paper visualizes IPC variation with box plots whose solid box spans
//! the first to third quartile and whose whiskers span the 5th to the 95th
//! percentile (Fig. 1 / Fig. 5). [`BoxplotStats`] computes exactly those
//! five numbers plus outlier counts.

use serde::{Deserialize, Serialize};

/// Computes the `p`-th percentile (0.0 ..= 100.0) of `samples` using linear
/// interpolation between closest ranks (the "linear" / type-7 method used by
/// NumPy's default `percentile`).
///
/// Returns `None` for an empty slice.
///
/// ```
/// use taskpoint_stats::percentile;
/// let xs = [1.0, 2.0, 3.0, 4.0];
/// assert_eq!(percentile(&xs, 50.0), Some(2.5));
/// assert_eq!(percentile(&xs, 0.0), Some(1.0));
/// assert_eq!(percentile(&xs, 100.0), Some(4.0));
/// ```
///
/// # Panics
///
/// Panics if `p` is not within `0.0..=100.0` or if any sample is NaN.
pub fn percentile(samples: &[f64], p: f64) -> Option<f64> {
    assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
    if samples.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample in percentile input"));
    Some(percentile_sorted(&sorted, p))
}

/// Like [`percentile`] but assumes `sorted` is already ascending.
///
/// This is the building block for computing several percentiles of the same
/// data without re-sorting.
///
/// # Panics
///
/// Panics if `p` is outside `0.0..=100.0`. An empty slice panics via index.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (n - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// The five-number boxplot summary used by the paper's variation figures,
/// with whiskers at the 5th/95th percentile and samples beyond the whiskers
/// counted as outliers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoxplotStats {
    /// 5th percentile (lower whisker).
    pub p5: f64,
    /// First quartile (bottom of the box).
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile (top of the box).
    pub q3: f64,
    /// 95th percentile (upper whisker).
    pub p95: f64,
    /// Smallest sample (most extreme low outlier, equals `p5` if none).
    pub min: f64,
    /// Largest sample (most extreme high outlier, equals `p95` if none).
    pub max: f64,
    /// Number of samples below the lower whisker.
    pub outliers_low: usize,
    /// Number of samples above the upper whisker.
    pub outliers_high: usize,
    /// Total number of samples.
    pub count: usize,
}

impl BoxplotStats {
    /// Computes boxplot statistics over `samples`. Returns `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if any sample is NaN.
    pub fn from_samples(samples: &[f64]) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample in boxplot input"));
        let p5 = percentile_sorted(&sorted, 5.0);
        let q1 = percentile_sorted(&sorted, 25.0);
        let median = percentile_sorted(&sorted, 50.0);
        let q3 = percentile_sorted(&sorted, 75.0);
        let p95 = percentile_sorted(&sorted, 95.0);
        let outliers_low = sorted.iter().take_while(|&&x| x < p5).count();
        let outliers_high = sorted.iter().rev().take_while(|&&x| x > p95).count();
        Some(Self {
            p5,
            q1,
            median,
            q3,
            p95,
            min: sorted[0],
            max: *sorted.last().expect("non-empty"),
            outliers_low,
            outliers_high,
            count: sorted.len(),
        })
    }

    /// Half-width of the whisker span, i.e. `max(|p95|, |p5|)` of data that
    /// was normalized to zero. For percent-deviation data this is the
    /// "±x%" number the paper quotes ("performance variation lies within
    /// ±5%").
    pub fn whisker_halfwidth(&self) -> f64 {
        self.p95.abs().max(self.p5.abs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_of_empty_is_none() {
        assert_eq!(percentile(&[], 50.0), None);
    }

    #[test]
    fn percentile_of_singleton_is_that_value() {
        assert_eq!(percentile(&[7.0], 0.0), Some(7.0));
        assert_eq!(percentile(&[7.0], 50.0), Some(7.0));
        assert_eq!(percentile(&[7.0], 100.0), Some(7.0));
    }

    #[test]
    fn median_interpolates_between_middle_elements() {
        assert_eq!(percentile(&[4.0, 1.0, 3.0, 2.0], 50.0), Some(2.5));
        assert_eq!(percentile(&[1.0, 2.0, 3.0], 50.0), Some(2.0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn percentile_rejects_out_of_range() {
        let _ = percentile(&[1.0], 101.0);
    }

    #[test]
    fn quartiles_of_uniform_ramp() {
        let xs: Vec<f64> = (0..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&xs, 25.0), Some(25.0));
        assert_eq!(percentile(&xs, 75.0), Some(75.0));
        assert_eq!(percentile(&xs, 95.0), Some(95.0));
    }

    #[test]
    fn boxplot_orders_its_fields() {
        let xs: Vec<f64> = (0..1000).map(|i| ((i * 37) % 101) as f64).collect();
        let b = BoxplotStats::from_samples(&xs).unwrap();
        assert!(b.min <= b.p5);
        assert!(b.p5 <= b.q1);
        assert!(b.q1 <= b.median);
        assert!(b.median <= b.q3);
        assert!(b.q3 <= b.p95);
        assert!(b.p95 <= b.max);
        assert_eq!(b.count, 1000);
    }

    #[test]
    fn boxplot_counts_outliers() {
        // 96 values at 0, then extremes: p5 == p95 == 0, so the extremes are outliers.
        let mut xs = vec![0.0; 96];
        xs.push(-10.0);
        xs.push(-11.0);
        xs.push(10.0);
        xs.push(12.0);
        let b = BoxplotStats::from_samples(&xs).unwrap();
        assert_eq!(b.outliers_low, 2);
        assert_eq!(b.outliers_high, 2);
        assert_eq!(b.min, -11.0);
        assert_eq!(b.max, 12.0);
    }

    #[test]
    fn boxplot_of_empty_is_none() {
        assert!(BoxplotStats::from_samples(&[]).is_none());
    }

    #[test]
    fn whisker_halfwidth_is_symmetric_measure() {
        let b = BoxplotStats::from_samples(&[-4.0, -2.0, 0.0, 2.0, 3.0]).unwrap();
        assert!((b.whisker_halfwidth() - b.p5.abs().max(b.p95.abs())).abs() < 1e-12);
    }
}
