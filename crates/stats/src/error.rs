//! Error and speedup metrics for the accuracy evaluation.
//!
//! The paper reports, per benchmark and thread count, the absolute percent
//! error of the sampled simulation's predicted execution time against a full
//! detailed simulation, and the wall-clock speedup of the sampled run.

use serde::{Deserialize, Serialize};

/// Absolute relative error in percent: `100 * |measured - reference| / reference`.
///
/// ```
/// use taskpoint_stats::relative_error_percent;
/// assert_eq!(relative_error_percent(102.0, 100.0), 2.0);
/// assert_eq!(relative_error_percent(98.0, 100.0), 2.0);
/// ```
///
/// # Panics
///
/// Panics if `reference` is zero or not finite.
pub fn relative_error_percent(measured: f64, reference: f64) -> f64 {
    assert!(reference.is_finite() && reference != 0.0, "invalid reference {reference}");
    100.0 * ((measured - reference) / reference).abs()
}

/// Speedup of `fast` over `slow` expressed as `slow / fast`.
///
/// # Panics
///
/// Panics if `fast` is zero or either argument is not finite.
pub fn speedup(slow: f64, fast: f64) -> f64 {
    assert!(slow.is_finite() && fast.is_finite(), "non-finite timing");
    assert!(fast != 0.0, "fast time is zero");
    slow / fast
}

/// Geometric mean. Returns `None` for empty input or any non-positive value.
///
/// ```
/// use taskpoint_stats::geometric_mean;
/// assert_eq!(geometric_mean(&[1.0, 4.0]), Some(2.0));
/// assert_eq!(geometric_mean(&[]), None);
/// ```
pub fn geometric_mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() || values.iter().any(|&v| v <= 0.0 || !v.is_finite()) {
        return None;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    Some((log_sum / values.len() as f64).exp())
}

/// Aggregated error/speedup across a set of experiment runs — the rows the
/// paper summarizes as "average error 1.8%, maximum error 15.0%, average
/// speedup 19.1".
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ErrorSummary {
    /// Arithmetic mean of absolute percent errors.
    pub mean_error_percent: f64,
    /// Largest absolute percent error.
    pub max_error_percent: f64,
    /// Arithmetic mean of speedups (the paper averages speedups arithmetically).
    pub mean_speedup: f64,
    /// Geometric mean of speedups (more robust; reported alongside).
    pub geomean_speedup: f64,
    /// Number of runs aggregated.
    pub runs: usize,
}

impl ErrorSummary {
    /// Aggregates `(error_percent, speedup)` pairs.
    ///
    /// Returns a default (all-zero) summary for empty input.
    pub fn from_runs(runs: &[(f64, f64)]) -> Self {
        if runs.is_empty() {
            return Self::default();
        }
        let n = runs.len() as f64;
        let mean_error_percent = runs.iter().map(|r| r.0).sum::<f64>() / n;
        let max_error_percent = runs.iter().map(|r| r.0).fold(0.0, f64::max);
        let mean_speedup = runs.iter().map(|r| r.1).sum::<f64>() / n;
        let speedups: Vec<f64> = runs.iter().map(|r| r.1).collect();
        let geomean_speedup = geometric_mean(&speedups).unwrap_or(0.0);
        Self {
            mean_error_percent,
            max_error_percent,
            mean_speedup,
            geomean_speedup,
            runs: runs.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_symmetric_and_absolute() {
        assert_eq!(relative_error_percent(110.0, 100.0), relative_error_percent(90.0, 100.0));
        assert!(relative_error_percent(90.0, 100.0) > 0.0);
    }

    #[test]
    fn zero_error_when_exact() {
        assert_eq!(relative_error_percent(42.0, 42.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "invalid reference")]
    fn error_rejects_zero_reference() {
        let _ = relative_error_percent(1.0, 0.0);
    }

    #[test]
    fn speedup_is_ratio() {
        assert_eq!(speedup(100.0, 5.0), 20.0);
    }

    #[test]
    fn geomean_rejects_nonpositive() {
        assert_eq!(geometric_mean(&[1.0, 0.0]), None);
        assert_eq!(geometric_mean(&[1.0, -2.0]), None);
    }

    #[test]
    fn geomean_of_reciprocals_is_one() {
        let g = geometric_mean(&[2.0, 0.5, 4.0, 0.25]).unwrap();
        assert!((g - 1.0).abs() < 1e-12);
    }

    #[test]
    fn summary_aggregates() {
        let s = ErrorSummary::from_runs(&[(1.0, 10.0), (3.0, 40.0)]);
        assert_eq!(s.mean_error_percent, 2.0);
        assert_eq!(s.max_error_percent, 3.0);
        assert_eq!(s.mean_speedup, 25.0);
        assert!((s.geomean_speedup - 20.0).abs() < 1e-9);
        assert_eq!(s.runs, 2);
    }

    #[test]
    fn summary_of_empty_is_default() {
        assert_eq!(ErrorSummary::from_runs(&[]), ErrorSummary::default());
    }
}
