//! Two-sided Student-t critical values at the confidence levels the
//! adaptive-accuracy subsystem supports.
//!
//! The tables pin the standard published values (e.g. NIST/SEMATECH
//! e-Handbook of Statistical Methods, §1.3.6.7.2; identical in any
//! statistics reference): `t_{1-α/2, df}` for two-sided confidence
//! `1-α ∈ {0.90, 0.95, 0.99}`, exact for `df = 1..=30` plus the
//! conventional anchor rows `df = 40, 60, 120` and the normal limit.
//!
//! For a degrees-of-freedom value between anchor rows the lookup is
//! **conservative**: it returns the value of the largest tabulated `df`
//! not exceeding the request, which is the *larger* critical value — a
//! confidence interval computed with it can only be wider than the exact
//! one, so an adaptive controller never stops sampling early because of
//! table coarseness.

use serde::{Deserialize, Serialize};

/// A supported two-sided confidence level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Confidence {
    /// 90% two-sided confidence (`α = 0.10`).
    C90,
    /// 95% two-sided confidence (`α = 0.05`) — the conventional default.
    C95,
    /// 99% two-sided confidence (`α = 0.01`).
    C99,
}

impl Confidence {
    /// Every supported level, ascending.
    pub const ALL: [Confidence; 3] = [Confidence::C90, Confidence::C95, Confidence::C99];

    /// The confidence level as a fraction (0.90 / 0.95 / 0.99).
    pub fn level(self) -> f64 {
        match self {
            Confidence::C90 => 0.90,
            Confidence::C95 => 0.95,
            Confidence::C99 => 0.99,
        }
    }

    /// A short stable tag (`"90"` / `"95"` / `"99"`), used in labels and
    /// content hashes.
    pub fn tag(self) -> &'static str {
        match self {
            Confidence::C90 => "90",
            Confidence::C95 => "95",
            Confidence::C99 => "99",
        }
    }

    /// Parses the tag produced by [`Confidence::tag`].
    pub fn from_tag(tag: &str) -> Option<Confidence> {
        Confidence::ALL.into_iter().find(|c| c.tag() == tag)
    }

    fn column(self) -> usize {
        match self {
            Confidence::C90 => 0,
            Confidence::C95 => 1,
            Confidence::C99 => 2,
        }
    }
}

impl std::fmt::Display for Confidence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}%", self.tag())
    }
}

/// Published two-sided critical values for `df = 1..=30`; columns are
/// (90%, 95%, 99%).
const T_TABLE_1_30: [[f64; 3]; 30] = [
    [6.314, 12.706, 63.657],
    [2.920, 4.303, 9.925],
    [2.353, 3.182, 5.841],
    [2.132, 2.776, 4.604],
    [2.015, 2.571, 4.032],
    [1.943, 2.447, 3.707],
    [1.895, 2.365, 3.499],
    [1.860, 2.306, 3.355],
    [1.833, 2.262, 3.250],
    [1.812, 2.228, 3.169],
    [1.796, 2.201, 3.106],
    [1.782, 2.179, 3.055],
    [1.771, 2.160, 3.012],
    [1.761, 2.145, 2.977],
    [1.753, 2.131, 2.947],
    [1.746, 2.120, 2.921],
    [1.740, 2.110, 2.898],
    [1.734, 2.101, 2.878],
    [1.729, 2.093, 2.861],
    [1.725, 2.086, 2.845],
    [1.721, 2.080, 2.831],
    [1.717, 2.074, 2.819],
    [1.714, 2.069, 2.807],
    [1.711, 2.064, 2.797],
    [1.708, 2.060, 2.787],
    [1.706, 2.056, 2.779],
    [1.703, 2.052, 2.771],
    [1.701, 2.048, 2.763],
    [1.699, 2.045, 2.756],
    [1.697, 2.042, 2.750],
];

/// Anchor rows above `df = 30`: `(df, [90%, 95%, 99%])`.
const T_TABLE_ANCHORS: [(u64, [f64; 3]); 3] =
    [(40, [1.684, 2.021, 2.704]), (60, [1.671, 2.000, 2.660]), (120, [1.658, 1.980, 2.617])];

/// Normal-distribution limit (`df = ∞`).
const Z_LIMIT: [f64; 3] = [1.645, 1.960, 2.576];

/// The two-sided Student-t critical value `t_{1-α/2, df}`.
///
/// Exact published values for `df = 1..=30`, `40`, `60` and `120`;
/// between anchors the largest tabulated `df ≤` the request is used
/// (conservative — see the module docs). Very large `df` (≥ 1000)
/// returns the normal limit.
///
/// # Panics
///
/// Panics if `df == 0` (no critical value exists).
pub fn student_t_critical(confidence: Confidence, df: u64) -> f64 {
    assert!(df > 0, "Student-t critical value requires df >= 1");
    let col = confidence.column();
    if df <= 30 {
        return T_TABLE_1_30[(df - 1) as usize][col];
    }
    if df >= 1000 {
        return Z_LIMIT[col];
    }
    // Largest anchor row not exceeding df; df in 31..=39 keeps row 30.
    let mut value = T_TABLE_1_30[29][col];
    for (anchor_df, row) in T_TABLE_ANCHORS {
        if df >= anchor_df {
            value = row[col];
        }
    }
    value
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pins_published_values() {
        // Spot checks straight out of the published table.
        assert_eq!(student_t_critical(Confidence::C95, 1), 12.706);
        assert_eq!(student_t_critical(Confidence::C90, 1), 6.314);
        assert_eq!(student_t_critical(Confidence::C99, 1), 63.657);
        assert_eq!(student_t_critical(Confidence::C95, 4), 2.776);
        assert_eq!(student_t_critical(Confidence::C90, 10), 1.812);
        assert_eq!(student_t_critical(Confidence::C99, 10), 3.169);
        assert_eq!(student_t_critical(Confidence::C95, 30), 2.042);
        assert_eq!(student_t_critical(Confidence::C95, 40), 2.021);
        assert_eq!(student_t_critical(Confidence::C95, 60), 2.000);
        assert_eq!(student_t_critical(Confidence::C95, 120), 1.980);
        assert_eq!(student_t_critical(Confidence::C95, 100_000), 1.960);
    }

    #[test]
    fn between_anchors_is_conservative() {
        // 31..=39 keep the df=30 value; 41..=59 keep df=40; etc.
        assert_eq!(student_t_critical(Confidence::C95, 35), 2.042);
        assert_eq!(student_t_critical(Confidence::C95, 59), 2.021);
        assert_eq!(student_t_critical(Confidence::C95, 119), 2.000);
        assert_eq!(student_t_critical(Confidence::C95, 999), 1.980);
    }

    #[test]
    fn monotone_decreasing_in_df() {
        for c in Confidence::ALL {
            let mut prev = f64::INFINITY;
            for df in 1..2000 {
                let t = student_t_critical(c, df);
                assert!(t <= prev, "{c} df={df}: {t} > {prev}");
                prev = t;
            }
        }
    }

    #[test]
    fn monotone_increasing_in_confidence() {
        for df in [1u64, 2, 5, 10, 30, 50, 200, 5000] {
            let t90 = student_t_critical(Confidence::C90, df);
            let t95 = student_t_critical(Confidence::C95, df);
            let t99 = student_t_critical(Confidence::C99, df);
            assert!(t90 < t95 && t95 < t99, "df={df}");
        }
    }

    #[test]
    fn levels_and_tags_round_trip() {
        for c in Confidence::ALL {
            assert_eq!(Confidence::from_tag(c.tag()), Some(c));
        }
        assert_eq!(Confidence::from_tag("42"), None);
        assert_eq!(Confidence::C95.level(), 0.95);
        assert_eq!(Confidence::C95.to_string(), "95%");
    }

    #[test]
    #[should_panic(expected = "df >= 1")]
    fn zero_df_rejected() {
        student_t_critical(Confidence::C95, 0);
    }
}
