//! End-to-end tests of the external-trace ingestion frontend: fixture
//! golden checksums, text/binary round trips, replay identity through the
//! `RecordedTraces` bundle, typed errors for every malformed-input
//! fixture, campaign integration (content-addressed cache hits), and
//! mutation proptests (arbitrary corruption of valid fixture lines must
//! yield `IngestError`s, never panics).

use std::sync::Arc;

use proptest::prelude::*;
use taskpoint_repro::campaign::{Campaign, Executor, ResultStore, Sweep};
use taskpoint_repro::runtime::{program_from_ingested, TaskInstanceId};
use taskpoint_repro::sim::{RecordedTraces, TraceProvider};
use taskpoint_repro::trace::{IngestedTrace, InstBlock, Instruction, RecordedTrace, TraceSource};
use taskpoint_repro::workloads::{ExternalWorkload, ScaleConfig};

/// FNV-1a/64 over a byte stream — the golden-checksum hash.
fn fnv(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Checksum of an ingested trace: every task's dense index, dep list and
/// encoded stream bytes, in order.
fn trace_checksum(trace: &IngestedTrace) -> u64 {
    let mut bytes = Vec::new();
    for task in trace.tasks() {
        bytes.extend_from_slice(&task.index.to_le_bytes());
        bytes.extend_from_slice(&task.type_index.to_le_bytes());
        for &d in &task.deps {
            bytes.extend_from_slice(&d.to_le_bytes());
        }
        bytes.extend_from_slice(&task.bytes);
    }
    fnv(bytes)
}

fn drain(mut source: Box<dyn TraceSource>) -> Vec<Instruction> {
    let mut block = InstBlock::new();
    let mut out = Vec::new();
    while source.fill(&mut block) > 0 {
        out.extend(block.iter());
    }
    out
}

#[test]
fn fixture_golden_checksums() {
    // Pins the exact ingested content of both checked-in fixtures (stream
    // bytes, dense remapping and dependence lists). If a recipe, the
    // parser or a fixture changes, this fails before anything subtler can.
    let dag = ExternalWorkload::DagMini.ingest();
    let pipe = ExternalWorkload::PipelineMini.ingest();
    assert_eq!(trace_checksum(&dag), 0xca17_0960_04cd_b2be, "dag-mini content drifted");
    assert_eq!(trace_checksum(&pipe), 0x8ed7_fbff_ad51_55a1, "pipeline-mini content drifted");
    assert_eq!(dag.total_instructions(), 14_017);
    assert_eq!(pipe.total_instructions(), 12_694);
}

#[test]
fn ingested_bundle_replays_bit_identically_to_direct_replay() {
    // text -> ingest -> bundle -> engine-facing source must equal a
    // RecordedTrace built directly over the task's bytes, and equal the
    // decoded event stream.
    for workload in ExternalWorkload::ALL {
        let trace = workload.ingest();
        let program = program_from_ingested(workload.name(), &trace);
        let bundle = RecordedTraces::from_ingested(&trace);
        bundle.verify_against(&program).unwrap();
        for task in trace.tasks() {
            let id = TaskInstanceId(task.index);
            let via_bundle = drain(bundle.source(id, program.instance(id).trace()));
            let direct = RecordedTrace::from_arc(Arc::clone(&task.bytes)).unwrap();
            let via_direct = drain(Box::new(direct));
            assert_eq!(via_bundle, via_direct, "{}: task {}", workload.name(), task.index);
            assert_eq!(via_bundle, trace.instructions_of(task.index as usize));
            assert_eq!(via_bundle.len() as u64, task.instructions);
        }
    }
}

#[test]
fn encodings_round_trip_between_text_and_binary() {
    for workload in ExternalWorkload::ALL {
        let trace = workload.ingest();
        let via_text = IngestedTrace::parse_text(&trace.to_text()).unwrap();
        assert_eq!(via_text, trace, "{}: text round trip", workload.name());
        let via_binary = IngestedTrace::parse_binary(&trace.to_binary()).unwrap();
        assert_eq!(via_binary, trace, "{}: binary round trip", workload.name());
    }
}

#[test]
fn bundle_file_round_trips_for_ingested_traces() {
    let trace = ExternalWorkload::DagMini.ingest();
    let bundle = RecordedTraces::from_ingested(&trace);
    let path = std::env::temp_dir().join("taskpoint_ingest_rt.bundle");
    bundle.write_to(&path).unwrap();
    let back = RecordedTraces::read_from(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(back.len(), bundle.len());
    assert_eq!(back.total_bytes(), bundle.total_bytes());
    for task in trace.tasks() {
        let id = TaskInstanceId(task.index);
        assert_eq!(back.get(id).unwrap().bytes(), bundle.get(id).unwrap().bytes());
    }
}

#[test]
fn every_malformed_fixture_yields_a_typed_error() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/malformed");
    let mut checked = 0;
    let mut entries: Vec<_> = std::fs::read_dir(&dir).unwrap().map(|e| e.unwrap().path()).collect();
    entries.sort();
    for path in entries {
        let data = std::fs::read(&path).unwrap();
        // `parse` must return a typed IngestError — reaching this assert at
        // all proves no panic; the message must be non-empty and positioned.
        let err =
            IngestedTrace::parse(&data).expect_err(&format!("{} must be rejected", path.display()));
        assert!(!err.to_string().is_empty(), "{}", path.display());
        checked += 1;
    }
    assert!(checked >= 15, "malformed corpus shrank to {checked} files");
}

#[test]
fn ingested_campaign_cells_hit_the_content_addressed_cache() {
    // First run computes all 6 cells (2 workloads x reference/lazy/
    // periodic); an identical second campaign over the same store
    // must be a pure cache hit with byte-identical canonical JSONL —
    // the acceptance criterion of the ingestion frontend.
    let store_dir =
        std::env::temp_dir().join(format!("taskpoint_ingest_campaign_{}", std::process::id()));
    let specs = Sweep::Ingested.specs(ScaleConfig::quick());
    assert_eq!(specs.len(), 6);
    let first = Campaign::new(ResultStore::at(store_dir.clone()), Executor::new(2));
    let report1 = first.run(&specs);
    assert_eq!(report1.computed, 6);
    assert_eq!(report1.cached, 0);
    let second = Campaign::new(ResultStore::at(store_dir.clone()), Executor::new(1));
    let report2 = second.run(&specs);
    std::fs::remove_dir_all(&store_dir).ok();
    assert_eq!(report2.computed, 0, "second run must be served from the store");
    assert_eq!(report2.cached, 6);
    assert_eq!(report1.jsonl(), report2.jsonl(), "canonical records are bit-identical");
    // Sampled cells really compared against the recorded reference.
    for outcome in &report1.outcomes {
        if outcome.record.kind == "sampled" {
            let m = outcome.record.metrics.as_eval().unwrap();
            assert!(m.error_percent.is_finite());
            assert!(m.reference_cycles > 0);
        }
    }
}

/// One deterministic mutation of the fixture text, selected by `choice`.
fn mutate_text(text: &str, choice: u8, line_idx: usize, byte: u8, pos: usize) -> String {
    let lines: Vec<&str> = text.lines().collect();
    let idx = line_idx % lines.len();
    match choice % 5 {
        // Replace one byte of one line.
        0 => {
            let mut line = lines[idx].to_string().into_bytes();
            if line.is_empty() {
                line.push(byte);
            } else {
                let p = pos % line.len();
                line[p] = byte;
            }
            let line = String::from_utf8_lossy(&line).into_owned();
            let mut out: Vec<String> = lines.iter().map(|s| s.to_string()).collect();
            out[idx] = line;
            out.join("\n") + "\n"
        }
        // Delete one line.
        1 => {
            let mut out: Vec<&str> = lines.clone();
            out.remove(idx);
            out.join("\n") + "\n"
        }
        // Duplicate one line.
        2 => {
            let mut out: Vec<&str> = lines.clone();
            out.insert(idx, lines[idx]);
            out.join("\n") + "\n"
        }
        // Truncate the file at one line.
        3 => lines[..idx].join("\n") + "\n",
        // Insert a garbage line.
        _ => {
            let mut out: Vec<&str> = lines.clone();
            out.insert(idx, "Q:garbage:line");
            out.join("\n") + "\n"
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn arbitrary_text_mutations_never_panic(
        choice in 0u8..5,
        line_idx in any::<usize>(),
        byte in any::<u8>(),
        pos in any::<usize>(),
    ) {
        let text = String::from_utf8(ExternalWorkload::DagMini.fixture_bytes().to_vec()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        let idx = line_idx % lines.len();
        let mutated = mutate_text(&text, choice, line_idx, byte, pos);
        // Reaching the match at all proves totality: any panic inside the
        // parser fails the test. Structural damage must surface as Err.
        let result = IngestedTrace::parse(mutated.as_bytes());
        let target = lines[idx];
        let deleted_structural = choice % 5 == 1
            && (target.starts_with("B:") || target.starts_with("E:") || target.starts_with('%'));
        let duplicated_structural = choice % 5 == 2
            && (target.starts_with("B:") || target.starts_with("E:"));
        let inserted_garbage = choice % 5 == 4;
        // (Truncation can land exactly on a task boundary and stay valid —
        // a shorter but well-formed trace — so it only gets the no-panic
        // and reparse guarantees below.)
        if deleted_structural || duplicated_structural || inserted_garbage {
            prop_assert!(result.is_err(), "mutation {choice} of line {idx} ({target:?}) must fail");
        }
        if let Ok(reparsed) = result {
            // A mutation that stays valid must still serialize/reparse.
            prop_assert_eq!(
                IngestedTrace::parse_text(&reparsed.to_text()).unwrap(),
                reparsed
            );
        }
    }

    #[test]
    fn arbitrary_binary_corruption_never_panics(
        pos in any::<usize>(),
        byte in any::<u8>(),
        cut in any::<usize>(),
    ) {
        let mut data = ExternalWorkload::PipelineMini.fixture_bytes().to_vec();
        let p = pos % data.len();
        data[p] = byte;
        data.truncate(6 + cut % (data.len() - 6));
        // Must return Ok or a typed Err — never panic, never hang.
        let _ = IngestedTrace::parse(&data);
    }
}
