//! Scheduler-determinism properties for the discrete-event engine.
//!
//! The bit-identity guarantee of the event refactor rests on one
//! invariant: the [`EventScheduler`]'s pop order is a pure function of
//! the scheduled multiset — `(tick, component id)` ascending — and does
//! not depend on insertion order or on the heap's initial capacity.
//! These properties pin that invariant directly, complementing the
//! golden-grid equivalence tests in `block_equivalence.rs`.

use proptest::prelude::*;
use taskpoint_repro::sim::{ComponentId, EventScheduler};

/// Pops every pending event, in scheduler order.
fn drain(sched: &mut EventScheduler) -> Vec<(u64, u32)> {
    let mut out = Vec::new();
    while let Some((tick, id)) = sched.pop() {
        out.push((tick, id.0));
    }
    out
}

/// Fills a scheduler from an event list.
fn filled(events: &[(u64, u32)], capacity: Option<usize>) -> EventScheduler {
    let mut sched = match capacity {
        Some(c) => EventScheduler::with_capacity(c),
        None => EventScheduler::new(),
    };
    for &(tick, id) in events {
        sched.schedule(tick, ComponentId(id));
    }
    sched
}

/// Deterministic Fisher–Yates permutation of an event list (SplitMix64
/// stream seeded by the property input, so cases reproduce exactly).
fn shuffled(events: &[(u64, u32)], seed: u64) -> Vec<(u64, u32)> {
    let mut v = events.to_vec();
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    for i in (1..v.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        v.swap(i, j);
    }
    v
}

proptest! {
    #[test]
    fn pop_order_is_the_sorted_multiset(
        events in prop::collection::vec((0u64..50, 0u32..8), 0..64),
    ) {
        let popped = drain(&mut filled(&events, None));
        let mut expected = events.clone();
        expected.sort_unstable();
        prop_assert_eq!(popped, expected);
    }

    #[test]
    fn pop_order_is_invariant_under_insertion_order(
        events in prop::collection::vec((0u64..50, 0u32..8), 0..64),
        seed in any::<u64>(),
    ) {
        let baseline = drain(&mut filled(&events, None));
        let permuted = shuffled(&events, seed);
        prop_assert_eq!(drain(&mut filled(&permuted, None)), baseline.clone());
        let mut reversed = events.clone();
        reversed.reverse();
        prop_assert_eq!(drain(&mut filled(&reversed, None)), baseline);
    }

    #[test]
    fn pop_order_is_invariant_under_heap_capacity(
        events in prop::collection::vec((0u64..1_000_000, 0u32..32), 0..48),
        extra in 0usize..64,
    ) {
        let baseline = drain(&mut filled(&events, None));
        for capacity in [0, 1, events.len(), events.len() + extra] {
            prop_assert_eq!(drain(&mut filled(&events, Some(capacity))), baseline.clone());
        }
    }

    #[test]
    fn interleaved_pops_respect_the_global_order(
        first in prop::collection::vec((0u64..40, 0u32..8), 1..32),
        second in prop::collection::vec((0u64..40, 0u32..8), 1..32),
    ) {
        // Draining after a partial fill + refill still pops the merged
        // multiset in order from the point of the refill: the scheduler
        // holds no hidden state beyond the pending set.
        let mut sched = filled(&first, None);
        let head = sched.pop();
        for &(tick, id) in &second {
            sched.schedule(tick, ComponentId(id));
        }
        let rest = drain(&mut sched);
        let mut expected: Vec<(u64, u32)> = first.clone();
        expected.sort_unstable();
        prop_assert_eq!(head.map(|(t, id)| (t, id.0)), Some(expected[0]));
        expected.remove(0);
        expected.extend(&second);
        expected.sort_unstable();
        prop_assert_eq!(rest, expected);
    }
}
