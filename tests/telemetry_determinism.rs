//! Determinism and export guarantees of the telemetry subsystem.
//!
//! The contract under test, end to end through the real stack:
//!
//! 1. **Byte-identical streams** — two identical simulations produce
//!    byte-identical canonical telemetry (same FNV-1a checksum), at every
//!    worker count, because events are timestamped in simulated ticks and
//!    wall clock is confined to the profiling channel.
//! 2. **Observer effect: none** — a recording run returns the same
//!    `SimResult` as an unobserved run.
//! 3. **Exports are consumable** — the Chrome trace parses as JSON and the
//!    `*.tptrace` timeline re-ingests through the external-trace parser.
//! 4. **Fidelity events tell the truth** — an adaptive run emits exactly
//!    one convergence event per cluster the `AccuracyReport` says
//!    converged.

use taskpoint_repro::campaign::json::Value;
use taskpoint_repro::sim::{MachineConfig, ProceduralTraces, SimResult, Telemetry};
use taskpoint_repro::taskpoint::{
    run_adaptive_observed, run_reference_observed, run_sampled_observed, TaskPointConfig,
};
use taskpoint_repro::telemetry::{FidelityAction, SimEvent, TelemetryReport};
use taskpoint_repro::trace::IngestedTrace;
use taskpoint_repro::workloads::{Benchmark, ScaleConfig};

fn observed_reference(workers: u32) -> (SimResult, TelemetryReport) {
    let program = Benchmark::Spmv.generate(&ScaleConfig::quick());
    let telemetry = Telemetry::recording();
    let result = run_reference_observed(
        &program,
        MachineConfig::tiny_test(),
        workers,
        Box::new(ProceduralTraces),
        telemetry.clone(),
    );
    (result, telemetry.take_report().expect("recording handle yields a report"))
}

#[test]
fn identical_runs_produce_byte_identical_telemetry_at_any_worker_count() {
    for workers in [1, 2, 4] {
        let (ra, a) = observed_reference(workers);
        let (rb, b) = observed_reference(workers);
        assert_eq!(ra.total_cycles, rb.total_cycles, "{workers}t: simulation determinism");
        assert_eq!(
            a.canonical_text(),
            b.canonical_text(),
            "{workers}t: canonical telemetry must be byte-identical"
        );
        assert_eq!(a.fnv64(), b.fnv64(), "{workers}t: checksum");
        assert!(!a.events.is_empty() && !a.counters.is_empty());
    }
}

#[test]
fn recording_does_not_change_the_simulation_result() {
    let program = Benchmark::Cholesky.generate(&ScaleConfig::quick());
    let machine = MachineConfig::low_power();
    let run = |telemetry: Telemetry| {
        run_sampled_observed(
            &program,
            machine.clone(),
            2,
            TaskPointConfig::lazy(),
            Box::new(ProceduralTraces),
            telemetry,
        )
    };
    let (plain, plain_stats) = run(Telemetry::disabled());
    let (observed, observed_stats) = run(Telemetry::recording());
    assert_eq!(plain.total_cycles, observed.total_cycles);
    assert_eq!(plain.detailed_tasks, observed.detailed_tasks);
    assert_eq!(plain.fast_tasks, observed.fast_tasks);
    assert_eq!(plain.detailed_instructions, observed.detailed_instructions);
    assert_eq!(plain.fast_instructions, observed.fast_instructions);
    assert_eq!(plain_stats.resamples.len(), observed_stats.resamples.len());
}

#[test]
fn chrome_trace_export_is_valid_json_with_expected_events() {
    let (_, report) = observed_reference(2);
    let text = report.chrome_trace_json();
    let Value::Obj(doc) = Value::parse(&text).expect("chrome trace parses as JSON") else {
        panic!("chrome trace is not a JSON object");
    };
    let Some(Value::Arr(events)) = doc.get("traceEvents") else {
        panic!("traceEvents array missing");
    };
    let phase_count = |ph: &str| {
        events.iter().filter(|e| matches!(e, Value::Obj(o) if o.str("ph") == Some(ph))).count()
    };
    assert!(phase_count("X") > 0, "complete (task) events present");
    assert!(phase_count("C") > 0, "counter (queue depth) events present");
    assert!(phase_count("M") > 0, "process metadata present");
}

#[test]
fn tptrace_timeline_round_trips_through_the_ingest_parser() {
    let (result, report) = observed_reference(2);
    let text = report.tptrace_timeline().expect("reference run finishes tasks");
    let reingested = IngestedTrace::parse_text(&text).expect("timeline re-ingests");
    assert_eq!(
        reingested.num_tasks() as u64,
        result.detailed_tasks + result.fast_tasks,
        "one ingest task per finished instance"
    );
    assert_eq!(reingested.threads(), 2);
}

#[test]
fn gantt_renders_every_worker_row() {
    let (_, report) = observed_reference(4);
    let gantt = report.render_gantt(80);
    for worker in 0..4 {
        assert!(gantt.contains(&format!("w{worker}")), "row for worker {worker}:\n{gantt}");
    }
    assert!(gantt.contains("legend:"));
}

#[test]
fn adaptive_runs_emit_one_convergence_event_per_converged_cluster() {
    let program = Benchmark::Spmv.generate(&ScaleConfig::quick());
    let telemetry = Telemetry::recording();
    let (_, _, accuracy) = run_adaptive_observed(
        &program,
        MachineConfig::tiny_test(),
        2,
        TaskPointConfig::adaptive(0.1),
        Box::new(ProceduralTraces),
        telemetry.clone(),
    );
    let report = telemetry.take_report().expect("recording handle yields a report");
    let count_action = |action: FidelityAction| {
        report
            .events
            .iter()
            .filter(|e| matches!(e, SimEvent::Fidelity { action: a, .. } if *a == action))
            .count()
    };
    let converged =
        count_action(FidelityAction::Converged) + count_action(FidelityAction::RareConverged);
    assert_eq!(
        converged,
        accuracy.converged_units(),
        "one convergence event per converged cluster"
    );
    assert_eq!(
        count_action(FidelityAction::ClusterOpened),
        accuracy.units(),
        "every cluster announces itself once"
    );
    assert!(count_action(FidelityAction::Sampled) >= accuracy.converged_units());
}
