//! Integration tests spanning all crates: workload generation → runtime
//! scheduling → detailed/sampled simulation → metrics.
//!
//! All detailed *reference* runs go through one process-wide [`Campaign`]
//! (in-memory store), so each (benchmark, machine, threads) reference is
//! simulated exactly once no matter how many assertions consume it — the
//! suite-wide sweeps below share their 19×2 references instead of
//! re-simulating per test, which is what kept this binary's debug
//! wall-clock high before the campaign subsystem existed.

use std::sync::{Arc, OnceLock};

use taskpoint_repro::campaign::Campaign;
use taskpoint_repro::sim::{MachineConfig, SimMode, SimResult, Simulation};
use taskpoint_repro::taskpoint::{evaluate, run_sampled, SamplingPolicy, TaskPointConfig};
use taskpoint_repro::workloads::{Benchmark, ScaleConfig};

fn quick() -> ScaleConfig {
    ScaleConfig::quick()
}

/// The process-wide campaign: shared program + reference caches.
fn campaign() -> &'static Campaign {
    static CAMPAIGN: OnceLock<Campaign> = OnceLock::new();
    CAMPAIGN.get_or_init(Campaign::in_memory)
}

/// A shared full-detail reference (computed once per cell, then reused
/// by every test in this binary).
fn reference(bench: Benchmark, machine: MachineConfig, workers: u32) -> Arc<SimResult> {
    campaign().reference(bench, quick(), machine, workers)
}

#[test]
fn every_benchmark_runs_detailed_on_both_machines() {
    // Smoke coverage of all 19 generators through the full detailed
    // pipeline at quick scale. Worker count 4 on purpose: the suite-band
    // test below evaluates against the same 4-thread references, so the
    // campaign computes each exactly once for both tests.
    for bench in Benchmark::ALL {
        let program = campaign().program(bench, &quick());
        for machine in [MachineConfig::high_performance(), MachineConfig::low_power()] {
            let r = reference(bench, machine, 4);
            assert_eq!(
                r.detailed_tasks as usize,
                program.num_instances(),
                "{bench}: all instances must run detailed"
            );
            assert!(r.total_cycles > 0, "{bench}: zero-cycle run");
        }
    }
}

#[test]
fn sampled_prediction_is_reasonable_across_suite() {
    // At quick scale the sampled run must stay within a loose band of the
    // detailed reference for every benchmark (full-scale accuracy is the
    // subject of the figure harness, not unit tests). References come
    // from the shared campaign cache.
    for bench in Benchmark::ALL {
        let program = campaign().program(bench, &quick());
        let r = reference(bench, MachineConfig::high_performance(), 4);
        let (outcome, _) = evaluate(
            &program,
            MachineConfig::high_performance(),
            4,
            TaskPointConfig::lazy(),
            Some(&r),
        );
        // Quick scale shrinks tasks ~20x, so startup transients weigh far
        // more than at evaluation scale; the band here is a smoke check
        // (full-scale accuracy is validated by the figure harness).
        assert!(
            outcome.error_percent < 90.0,
            "{bench}: error {:.1}% out of band",
            outcome.error_percent
        );
    }
}

#[test]
fn sampled_run_fast_forwards_most_instances() {
    let program = campaign().program(Benchmark::Matmul, &quick());
    let (result, stats) =
        run_sampled(&program, MachineConfig::high_performance(), 8, TaskPointConfig::lazy());
    assert!(
        stats.fast_tasks as f64 > 0.9 * program.num_instances() as f64,
        "only {} of {} fast",
        stats.fast_tasks,
        program.num_instances()
    );
    assert!(result.detail_fraction() < 0.2);
}

#[test]
fn periodic_resamples_more_and_simulates_more_detail_than_lazy() {
    let program = campaign().program(Benchmark::Vecop, &quick());
    let machine = MachineConfig::high_performance();
    let (lazy, lazy_stats) = run_sampled(&program, machine.clone(), 8, TaskPointConfig::lazy());
    let config = TaskPointConfig::periodic().with_policy(SamplingPolicy::Periodic { period: 50 });
    let (periodic, periodic_stats) = run_sampled(&program, machine, 8, config);
    assert!(periodic_stats.resamples.len() > lazy_stats.resamples.len());
    assert!(periodic.detailed_instructions > lazy.detailed_instructions);
}

#[test]
fn periodic_equals_lazy_when_period_exceeds_program() {
    // The paper: "If the number of task instances of a program is too small
    // ... periodic sampling is equivalent to lazy sampling."
    let program = campaign().program(Benchmark::Spmv, &quick()); // 1,024 instances
    let machine = MachineConfig::high_performance();
    let big_p =
        TaskPointConfig::periodic().with_policy(SamplingPolicy::Periodic { period: 1_000_000 });
    let (periodic, _) = run_sampled(&program, machine.clone(), 8, big_p);
    let (lazy, _) = run_sampled(&program, machine, 8, TaskPointConfig::lazy());
    assert_eq!(periodic.total_cycles, lazy.total_cycles);
    assert_eq!(periodic.detailed_tasks, lazy.detailed_tasks);
}

#[test]
fn sampled_and_reference_are_deterministic_end_to_end() {
    let program = campaign().program(Benchmark::Reduction, &quick());
    let machine = MachineConfig::low_power();
    let a = taskpoint_repro::taskpoint::run_reference(&program, machine.clone(), 4);
    let b = reference(Benchmark::Reduction, machine.clone(), 4);
    assert_eq!(a.total_cycles, b.total_cycles, "fresh run equals shared reference");
    let (s1, st1) = run_sampled(&program, machine.clone(), 4, TaskPointConfig::periodic());
    let (s2, st2) = run_sampled(&program, machine, 4, TaskPointConfig::periodic());
    assert_eq!(s1.total_cycles, s2.total_cycles);
    assert_eq!(st1.resamples, st2.resamples);
    assert_eq!(st1.phase_log, st2.phase_log);
}

#[test]
fn schedule_validity_no_task_starts_before_predecessors_end() {
    let program = campaign().program(Benchmark::Cholesky, &quick());
    let result = Simulation::builder(&program, MachineConfig::low_power())
        .workers(8)
        .collect_reports(true)
        .build()
        .run(&mut taskpoint_repro::sim::DetailedOnly);
    let mut end_of = vec![0u64; program.num_instances()];
    for r in &result.reports {
        end_of[r.task.index()] = r.end;
    }
    for r in &result.reports {
        for pred in program.graph().predecessors(r.task) {
            assert!(
                r.start >= end_of[pred.index()],
                "task {} started at {} before predecessor {} ended at {}",
                r.task,
                r.start,
                pred,
                end_of[pred.index()]
            );
        }
    }
}

#[test]
fn mixed_mode_schedule_is_also_valid() {
    let program = campaign().program(Benchmark::Stencil3d, &quick());
    let mut controller =
        taskpoint_repro::taskpoint::TaskPointController::new(TaskPointConfig::periodic());
    let result = Simulation::builder(&program, MachineConfig::low_power())
        .workers(4)
        .collect_reports(true)
        .build()
        .run(&mut controller);
    let mut end_of = vec![0u64; program.num_instances()];
    for r in &result.reports {
        end_of[r.task.index()] = r.end;
    }
    let mut detailed = 0u64;
    let mut fast = 0u64;
    for r in &result.reports {
        match r.mode {
            SimMode::Detailed => detailed += 1,
            SimMode::Fast => fast += 1,
        }
        for pred in program.graph().predecessors(r.task) {
            assert!(r.start >= end_of[pred.index()]);
        }
    }
    assert!(detailed > 0 && fast > 0, "both modes must appear");
}

#[test]
fn more_threads_never_increase_total_work_error_catastrophically() {
    // Thread-count sensitivity smoke: sampled accuracy holds from 1..=8
    // threads on one benchmark. The 4-thread low-power reference is the
    // same campaign cell the suite-wide detailed test uses.
    let program = campaign().program(Benchmark::Histogram, &quick());
    for threads in [1u32, 2, 4, 8] {
        let r = reference(Benchmark::Histogram, MachineConfig::low_power(), threads);
        let (outcome, _) = evaluate(
            &program,
            MachineConfig::low_power(),
            threads,
            TaskPointConfig::periodic(),
            Some(&r),
        );
        assert!(outcome.error_percent < 60.0, "{threads} threads: {:.1}%", outcome.error_percent);
    }
}

#[test]
fn noise_model_produces_fig1_style_spread() {
    use taskpoint_repro::sim::{DetailedOnly, NoiseModel};
    use taskpoint_repro::stats::{normalize_by_group, BoxplotStats};
    let program = campaign().program(Benchmark::Swaptions, &quick());
    let result = Simulation::builder(&program, MachineConfig::high_performance())
        .workers(8)
        .noise(NoiseModel::native_execution(42))
        .collect_reports(true)
        .build()
        .run(&mut DetailedOnly);
    let devs = normalize_by_group(result.reports.iter().map(|r| (r.type_id.0, r.ipc())));
    let stats = BoxplotStats::from_samples(&devs).unwrap();
    // Noise must induce nonzero but bounded spread on a regular benchmark.
    assert!(stats.whisker_halfwidth() > 0.5, "noise too weak: {stats:?}");
    assert!(stats.whisker_halfwidth() < 25.0, "noise too strong: {stats:?}");
}
