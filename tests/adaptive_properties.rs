//! Property tests of the adaptive stopping rule, driven directly against
//! the controllers on synthetic single-type streams (1 worker, fixed
//! concurrency — the regime where the stopping rule is exactly
//! observable):
//!
//! * a cluster never fast-forwards before the `min_samples` floor;
//! * tightening `target_ci` never decreases the detailed-instance count;
//! * `target_ci = 0` (the degenerate setting) reproduces the lazy policy
//!   with `H = min_samples` decision-for-decision.

use proptest::prelude::*;
use taskpoint_repro::accuracy::{AdaptiveConfig, AdaptiveController, AdaptiveParams};
use taskpoint_repro::runtime::{TaskInstanceId, TaskTypeId, WorkerId};
use taskpoint_repro::sim::{ExecMode, ModeController, SimMode, TaskReport, TaskStart};
use taskpoint_repro::taskpoint::{TaskPointConfig, TaskPointController};

fn start(task: u64) -> TaskStart {
    TaskStart {
        task: TaskInstanceId(task),
        type_id: TaskTypeId(0),
        instructions: 1000,
        worker: WorkerId(0),
        time: task * 1000,
        concurrency: 1,
        total_workers: 1,
    }
}

fn report(task: u64, cycles: u64, mode: SimMode) -> TaskReport {
    TaskReport {
        task: TaskInstanceId(task),
        type_id: TaskTypeId(0),
        worker: WorkerId(0),
        start: task * 1000,
        end: task * 1000 + cycles,
        instructions: 1000,
        mode,
        concurrency: 1,
    }
}

/// Drives a controller through the whole stream; returns the per-task
/// mode decisions.
fn drive(ctrl: &mut dyn ModeController, cycles: &[u64]) -> Vec<ExecMode> {
    let mut modes = Vec::with_capacity(cycles.len());
    for (i, &c) in cycles.iter().enumerate() {
        let mode = ctrl.mode_for_task(&start(i as u64));
        let sim_mode = match mode {
            ExecMode::Detailed => SimMode::Detailed,
            ExecMode::Fast { .. } => SimMode::Fast,
        };
        ctrl.on_task_complete(&report(i as u64, c, sim_mode));
        modes.push(mode);
    }
    modes
}

fn detailed_count(modes: &[ExecMode]) -> usize {
    modes.iter().filter(|m| matches!(m, ExecMode::Detailed)).count()
}

proptest! {
    #[test]
    fn never_stops_before_the_min_samples_floor(
        cycles in prop::collection::vec(100u64..5000, 1..120),
        warmup in 0u64..4,
        min_samples in 1u64..8,
        target_permille in 0u64..300,
    ) {
        let target = target_permille as f64 / 1000.0;
        let config = AdaptiveConfig::new(target)
            .with_warmup(warmup)
            .with_params(AdaptiveParams::new(target).with_min_samples(min_samples));
        let mut ctrl = AdaptiveController::new(config);
        let modes = drive(&mut ctrl, &cycles);
        if let Some(first_fast) = modes.iter().position(|m| matches!(m, ExecMode::Fast { .. })) {
            prop_assert!(
                first_fast as u64 >= warmup + min_samples,
                "fast at {} with W={} floor={}", first_fast, warmup, min_samples
            );
        }
    }

    #[test]
    fn tighter_targets_are_monotone_in_detailed_count(
        cycles in prop::collection::vec(100u64..5000, 1..150),
        base_permille in 1u64..50,
        min_samples in 2u64..6,
    ) {
        // A descending ladder of positive targets (loose -> tight).
        let ladder: Vec<f64> = [16.0, 4.0, 2.0, 1.0]
            .iter()
            .map(|scale| scale * base_permille as f64 / 1000.0)
            .collect();
        let mut prev = 0usize;
        for &target in &ladder {
            let config = AdaptiveConfig::new(target)
                .with_params(AdaptiveParams::new(target).with_min_samples(min_samples));
            let mut ctrl = AdaptiveController::new(config);
            let detailed = detailed_count(&drive(&mut ctrl, &cycles));
            prop_assert!(
                detailed >= prev,
                "target {} sampled {} < looser target's {}", target, detailed, prev
            );
            prev = detailed;
        }
    }

    #[test]
    fn zero_target_degenerates_to_lazy(
        cycles in prop::collection::vec(100u64..5000, 1..120),
        history in 1usize..8,
        warmup_frac in 0u64..100,
    ) {
        // Lazy requires W <= H; sample W within the history size.
        let warmup = warmup_frac % (history as u64 + 1);
        let adaptive_config = AdaptiveConfig::new(0.0)
            .with_warmup(warmup)
            .with_params(AdaptiveParams::new(0.0).with_min_samples(history as u64));
        let lazy_config =
            TaskPointConfig::lazy().with_warmup(warmup).with_history(history);
        let mut adaptive = AdaptiveController::new(adaptive_config);
        let mut lazy = TaskPointController::new(lazy_config);
        let a = drive(&mut adaptive, &cycles);
        let b = drive(&mut lazy, &cycles);
        prop_assert_eq!(a.len(), b.len());
        for (i, (ma, mb)) in a.iter().zip(&b).enumerate() {
            match (ma, mb) {
                (ExecMode::Detailed, ExecMode::Detailed) => {}
                (ExecMode::Fast { ipc: ia }, ExecMode::Fast { ipc: ib }) => {
                    prop_assert!(
                        (ia - ib).abs() < 1e-9,
                        "task {}: fast IPC {} vs lazy {}", i, ia, ib
                    );
                }
                _ => return Err(TestCaseError::fail(format!(
                    "task {i}: adaptive {ma:?} vs lazy {mb:?}"
                ))),
            }
        }
    }
}
