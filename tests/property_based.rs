//! Property-based tests (proptest) on core data structures and invariants.

use proptest::prelude::*;
use taskpoint_repro::runtime::{Program, RegionAccess, TaskInstanceId};
use taskpoint_repro::sim::burst_duration;
use taskpoint_repro::stats::{percentile, BoxplotStats, Summary};
use taskpoint_repro::taskpoint::SampleHistory;
use taskpoint_repro::trace::{AccessPattern, InstructionMix, MemRegion, TraceSpec};

proptest! {
    // ---- stats ----

    #[test]
    fn summary_mean_within_min_max(xs in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let s: Summary = xs.iter().copied().collect();
        prop_assert!(s.mean() >= s.min() - 1e-9);
        prop_assert!(s.mean() <= s.max() + 1e-9);
        prop_assert_eq!(s.count(), xs.len() as u64);
    }

    #[test]
    fn percentiles_are_monotone(xs in prop::collection::vec(-1e3f64..1e3, 1..100),
                                 a in 0.0f64..100.0, b in 0.0f64..100.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let pa = percentile(&xs, lo).unwrap();
        let pb = percentile(&xs, hi).unwrap();
        prop_assert!(pa <= pb + 1e-9);
    }

    #[test]
    fn boxplot_fields_are_ordered(xs in prop::collection::vec(-1e3f64..1e3, 1..100)) {
        let b = BoxplotStats::from_samples(&xs).unwrap();
        prop_assert!(b.min <= b.p5 && b.p5 <= b.q1 && b.q1 <= b.median);
        prop_assert!(b.median <= b.q3 && b.q3 <= b.p95 && b.p95 <= b.max);
    }

    // ---- burst arithmetic ----

    #[test]
    fn burst_duration_bounds(instructions in 0u64..10_000_000, ipc in 0.01f64..8.0) {
        let d = burst_duration(instructions, ipc);
        prop_assert!(d >= 1);
        // d == ceil(I/ipc) (within fp tolerance)
        let exact = instructions as f64 / ipc;
        prop_assert!((d as f64) + 1e-6 >= exact);
        prop_assert!((d as f64) - 1.0 <= exact + 1.0);
    }

    #[test]
    fn burst_duration_monotone_in_instructions(i1 in 0u64..1_000_000, delta in 0u64..1_000_000,
                                               ipc in 0.01f64..8.0) {
        prop_assert!(burst_duration(i1 + delta, ipc) >= burst_duration(i1, ipc));
    }

    // ---- sample history ----

    #[test]
    fn history_mean_is_bounded_by_samples(cap in 1usize..16,
                                          xs in prop::collection::vec(0.01f64..10.0, 1..64)) {
        let mut h = SampleHistory::new(cap);
        for &x in &xs {
            h.push(x);
        }
        let kept: Vec<f64> = xs.iter().rev().take(cap).copied().collect();
        let lo = kept.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = kept.iter().cloned().fold(0.0f64, f64::max);
        let mean = h.mean_ipc().unwrap();
        prop_assert!(mean >= lo - 1e-9 && mean <= hi + 1e-9);
        prop_assert_eq!(h.len(), xs.len().min(cap));
    }

    // ---- memory regions ----

    #[test]
    fn region_split_tiles_exactly(base in 0u64..1_000_000, len in 1u64..1_000_000,
                                  n in 1u64..32) {
        let r = MemRegion::new(base, len);
        let parts = r.split(n);
        prop_assert_eq!(parts.len(), n as usize);
        prop_assert_eq!(parts[0].base, r.base);
        prop_assert_eq!(parts.last().unwrap().end(), r.end());
        let total: u64 = parts.iter().map(|p| p.len).sum();
        prop_assert_eq!(total, r.len);
        for w in parts.windows(2) {
            prop_assert_eq!(w[0].end(), w[1].base);
        }
    }

    // ---- traces ----

    #[test]
    fn trace_replay_is_identical_and_exact_length(seed in any::<u64>(), n in 0u64..3000) {
        let spec = TraceSpec::builder()
            .seed(seed)
            .instructions(n)
            .mix(InstructionMix::balanced())
            .pattern(AccessPattern::Random)
            .footprint(MemRegion::new(0x10_0000, 1 << 14))
            .build();
        let a: Vec<_> = spec.iter().collect();
        let b: Vec<_> = spec.iter().collect();
        prop_assert_eq!(a.len() as u64, n);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn block_fill_matches_iterator_for_any_capacity(seed in any::<u64>(), n in 0u64..3000,
                                                    capacity in 1usize..400) {
        use taskpoint_repro::trace::{InstBlock, Instruction, TraceSource};
        let spec = TraceSpec::builder()
            .seed(seed)
            .code_seed(seed ^ 0xABCD)
            .instructions(n)
            .mix(InstructionMix::balanced())
            .pattern(AccessPattern::strided(64, 3))
            .footprint(MemRegion::new(0x20_0000, 1 << 15))
            .build();
        let mut source = spec.source();
        let mut block = InstBlock::with_capacity(capacity);
        let mut batched: Vec<Instruction> = Vec::new();
        loop {
            let filled = source.fill(&mut block);
            if filled == 0 {
                break;
            }
            prop_assert!(filled <= capacity);
            batched.extend(block.iter());
        }
        let one_by_one: Vec<Instruction> = spec.iter().collect();
        prop_assert_eq!(batched, one_by_one);
    }

    #[test]
    fn instblock_streams_round_trip_through_codec(seed in any::<u64>(), n in 0u64..2500,
                                                  capacity in 1usize..300) {
        use taskpoint_repro::trace::{encode, InstBlock, RecordedTrace, TraceSource};
        let spec = TraceSpec::builder()
            .seed(seed)
            .instructions(n)
            .mix(InstructionMix::memory_bound())
            .pattern(AccessPattern::Random)
            .footprint(MemRegion::new(0x40_0000, 1 << 14))
            .build();
        // Encode block by block, then replay the byte stream through the
        // RecordedTrace source: the round trip must reproduce the exact
        // instruction sequence and the exact encoded bytes.
        let mut source = spec.source();
        let mut block = InstBlock::with_capacity(capacity);
        let mut bytes: Vec<u8> = Vec::new();
        while source.fill(&mut block) > 0 {
            bytes.extend_from_slice(encode::encode(block.iter()).as_ref());
        }
        let decoded = encode::decode(bytes.clone().into()).unwrap();
        let original: Vec<_> = spec.iter().collect();
        prop_assert_eq!(&decoded, &original);
        let mut replay = RecordedTrace::new(bytes.clone().into()).unwrap();
        prop_assert_eq!(replay.instructions(), n);
        let mut replayed = Vec::new();
        let mut rblock = InstBlock::with_capacity(97);
        while replay.fill(&mut rblock) > 0 {
            replayed.extend(rblock.iter());
        }
        prop_assert_eq!(&replayed, &original);
        let re_encoded = encode::encode(replayed);
        prop_assert_eq!(re_encoded.as_ref(), &bytes[..]);
    }

    #[test]
    fn trace_addresses_stay_in_footprint(seed in any::<u64>(), n in 1u64..2000,
                                         base in 1u64..1_000_000u64) {
        let footprint = MemRegion::new(base * 64, 1 << 13);
        let spec = TraceSpec::builder()
            .seed(seed)
            .instructions(n)
            .mix(InstructionMix::memory_bound())
            .pattern(AccessPattern::Gather { hot_probability: 0.7, hot_fraction: 0.25 })
            .footprint(footprint)
            .build();
        for inst in spec.iter() {
            if inst.kind.is_memory() {
                prop_assert!(footprint.contains(inst.addr));
            }
        }
    }

    // ---- dependence graph ----

    #[test]
    fn dependence_graph_edges_point_backwards(tasks in prop::collection::vec(0u8..8, 1..80)) {
        // Random chains over 8 regions: every predecessor must have a
        // smaller creation index (acyclicity by construction).
        let mut b = Program::builder("prop");
        let ty = b.add_type("t");
        for (i, &r) in tasks.iter().enumerate() {
            let region = MemRegion::new(0x1000 * (r as u64 + 1), 0x100);
            b.add_task(
                ty,
                TraceSpec::synthetic(i as u64, 1),
                vec![RegionAccess::inout(region)],
            );
        }
        let p = b.build();
        for i in 0..p.num_instances() as u64 {
            for pred in p.graph().predecessors(TaskInstanceId(i)) {
                prop_assert!(pred.0 < i);
            }
        }
        // Topological execution must drain the whole graph.
        let mut rs = p.graph().ready_set();
        let mut queue: Vec<TaskInstanceId> = p.graph().roots();
        let mut done = 0;
        while let Some(t) = queue.pop() {
            queue.extend(rs.complete(p.graph(), t));
            done += 1;
        }
        prop_assert_eq!(done, p.num_instances());
        prop_assert!(rs.all_done());
    }

    #[test]
    fn inout_chain_graph_is_a_path(n in 1usize..60) {
        let mut b = Program::builder("chain");
        let ty = b.add_type("t");
        let region = MemRegion::new(0x8000, 0x40);
        for i in 0..n {
            b.add_task(ty, TraceSpec::synthetic(i as u64, 1), vec![RegionAccess::inout(region)]);
        }
        let p = b.build();
        prop_assert_eq!(p.graph().critical_path_len(), n);
        prop_assert_eq!(p.graph().edge_count(), n - 1);
    }
}

proptest! {
    // ---- clustered sampling-unit remapping (paper §V-B future work) ----

    #[test]
    fn clustered_remapping_is_dense_stable_and_injective(
        granularity in 1u32..5,
        xs in prop::collection::vec(any::<u64>(), 1..200),
    ) {
        use std::collections::HashMap;
        use taskpoint_repro::runtime::TaskTypeId;
        use taskpoint_repro::taskpoint::{ClusteredController, TaskPointConfig};

        let mut c = ClusteredController::new(TaskPointConfig::lazy(), granularity);
        let mut model: HashMap<(u32, u32), u32> = HashMap::new();
        for &x in &xs {
            let ty = (x % 5) as u32;
            let instructions = x >> 3;
            let class = c.size_class(instructions);
            let vid = c.sampling_unit(TaskTypeId(ty), instructions).0;
            // Stable within a run: re-asking never reassigns.
            prop_assert_eq!(c.sampling_unit(TaskTypeId(ty), instructions).0, vid);
            match model.get(&(ty, class)) {
                Some(&expected) => prop_assert_eq!(vid, expected),
                None => {
                    model.insert((ty, class), vid);
                }
            }
        }
        // Injective across distinct (type, size-class) pairs.
        let mut vids: Vec<u32> = model.values().copied().collect();
        vids.sort_unstable();
        vids.dedup();
        prop_assert_eq!(vids.len(), model.len());
        // Dense: ids are exactly 0..num_clusters, in first-encounter order.
        prop_assert_eq!(c.num_clusters(), model.len());
        prop_assert_eq!(vids, (0..model.len() as u32).collect::<Vec<u32>>());
    }

    #[test]
    fn clustered_same_band_shares_a_unit_and_types_split(
        granularity in 1u32..5,
        exp in 0u32..40,
        ty in 0u32..8,
    ) {
        use taskpoint_repro::runtime::TaskTypeId;
        use taskpoint_repro::taskpoint::{ClusteredController, TaskPointConfig};

        let mut c = ClusteredController::new(TaskPointConfig::lazy(), granularity);
        // Lowest and highest instruction counts of one log2 band: both in
        // band `exp`, so necessarily in the same (wider) size class.
        let lo = 1u64 << exp;
        let hi = lo | (lo - 1);
        let a = c.sampling_unit(TaskTypeId(ty), lo);
        let b = c.sampling_unit(TaskTypeId(ty), hi);
        prop_assert_eq!(a, b);
        // A different task type never shares the unit, even at the same
        // instruction count.
        let other = c.sampling_unit(TaskTypeId(ty + 100), lo);
        prop_assert_ne!(a, other);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // ---- simulation-level properties (fewer cases; each runs a sim) ----

    #[test]
    fn burst_sim_time_scales_inversely_with_ipc(tasks in 2u64..20, instrs in 100u64..2000) {
        use taskpoint_repro::runtime::Program;
        use taskpoint_repro::sim::{FixedIpc, MachineConfig, Simulation};
        let mut b = Program::builder("scale");
        let ty = b.add_type("t");
        for i in 0..tasks {
            b.add_task(ty, TraceSpec::synthetic(i, instrs), vec![]);
        }
        let p = b.build();
        let run = |ipc: f64| {
            Simulation::builder(&p, MachineConfig::tiny_test())
                .workers(1)
                .build()
                .run(&mut FixedIpc(ipc))
                .total_cycles
        };
        let slow = run(1.0);
        let fast = run(2.0);
        prop_assert_eq!(slow, tasks * instrs);
        // Halving duration per task (ceil rounding makes it exact here).
        prop_assert_eq!(fast, tasks * instrs.div_ceil(2));
    }

    #[test]
    fn detailed_makespan_decreases_or_holds_with_more_workers(tasks in 8u64..24) {
        use taskpoint_repro::sim::{DetailedOnly, MachineConfig, Simulation};
        let mut b = Program::builder("scal");
        let ty = b.add_type("t");
        for i in 0..tasks {
            b.add_task(ty, TraceSpec::synthetic(i, 400), vec![]);
        }
        let p = b.build();
        let run = |w: u32| {
            Simulation::builder(&p, MachineConfig::tiny_test())
                .workers(w)
                .build()
                .run(&mut DetailedOnly)
                .total_cycles
        };
        let one = run(1);
        let four = run(4);
        // Independent equal tasks: more workers cannot hurt by more than
        // contention effects; allow 25% slack for shared-resource delays.
        prop_assert!(four as f64 <= one as f64 * 1.25);
    }
}
