//! Equivalence guarantees of the batched instruction-block pipeline.
//!
//! The refactor from per-instruction iteration to SoA blocks must not
//! change a single simulated bit. Three independent pins enforce that:
//!
//! 1. **Golden streams** — FNV checksums of encoded trace streams captured
//!    from the pre-refactor per-instruction generator. Any change to the
//!    (now batched and pattern-specialized) generator that alters one
//!    instruction changes the checksum.
//! 2. **Golden simulation results** — cycle counts of a benchmark ×
//!    machine × worker grid captured from the pre-refactor engine. The
//!    block engine must reproduce them exactly.
//! 3. **Capacity invariance** — block capacity 1 degenerates to
//!    per-instruction execution; results must be bit-identical to the
//!    default capacity (and an odd one that never divides task lengths).

use taskpoint_repro::sim::{DetailedOnly, MachineConfig, RecordedTraces, SimResult, Simulation};
use taskpoint_repro::trace::{encode, AccessPattern, InstructionMix, MemRegion, TraceSpec};
use taskpoint_repro::workloads::{Benchmark, ScaleConfig};

fn fnv(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Pre-refactor golden checksums (captured from the per-instruction
/// `TraceIter` before the block pipeline existed).
#[test]
fn trace_streams_match_pre_refactor_goldens() {
    let cases: [(&str, TraceSpec, u64, usize); 4] = [
        ("balanced-seq", TraceSpec::synthetic(42, 10_000), 0x2b3301bf3f257e08, 39646),
        (
            "membound-random",
            TraceSpec::builder()
                .seed(7)
                .code_seed(3)
                .instructions(10_000)
                .mix(InstructionMix::memory_bound())
                .pattern(AccessPattern::Random)
                .footprint(MemRegion::new(0x2000_0000, 1 << 18))
                .build(),
            0x6c1a8e6d9ae3067b,
            55702,
        ),
        (
            "atomic-gather",
            TraceSpec::builder()
                .seed(11)
                .code_seed(5)
                .instructions(10_000)
                .mix(InstructionMix::atomic_heavy())
                .pattern(AccessPattern::Gather { hot_probability: 0.8, hot_fraction: 0.1 })
                .footprint(MemRegion::new(0x3000_0000, 1 << 16))
                .shared(MemRegion::new(0x4000_0000, 4096))
                .build(),
            0x7649d7c2491151c7,
            51049,
        ),
        (
            "irregular-chase",
            TraceSpec::builder()
                .seed(13)
                .code_seed(9)
                .instructions(10_000)
                .mix(InstructionMix::irregular_int())
                .pattern(AccessPattern::PointerChase)
                .footprint(MemRegion::new(0x5000_0000, 1 << 17))
                .build(),
            0xe3a9b05a1f3b31c4,
            44659,
        ),
    ];
    for (name, spec, checksum, len) in cases {
        let bytes = encode::encode(spec.iter());
        assert_eq!(bytes.len(), len, "{name}: encoded length drifted");
        assert_eq!(fnv(bytes.as_ref()), checksum, "{name}: stream content drifted");
    }
}

fn run_detailed(
    program: &taskpoint_repro::runtime::Program,
    machine: &MachineConfig,
    workers: u32,
    block_capacity: usize,
) -> SimResult {
    Simulation::builder(program, machine.clone())
        .workers(workers)
        .collect_reports(true)
        .block_capacity(block_capacity)
        .build()
        .run(&mut DetailedOnly)
}

/// Everything deterministic in a `SimResult` (wall time excluded).
fn assert_identical(a: &SimResult, b: &SimResult, what: &str) {
    assert_eq!(a.total_cycles, b.total_cycles, "{what}: total_cycles");
    assert_eq!(a.detailed_tasks, b.detailed_tasks, "{what}: detailed_tasks");
    assert_eq!(a.fast_tasks, b.fast_tasks, "{what}: fast_tasks");
    assert_eq!(a.detailed_instructions, b.detailed_instructions, "{what}: detailed_instructions");
    assert_eq!(a.fast_instructions, b.fast_instructions, "{what}: fast_instructions");
    assert_eq!(a.invalidations, b.invalidations, "{what}: invalidations");
    assert_eq!(a.dram_accesses, b.dram_accesses, "{what}: dram_accesses");
    assert_eq!(a.private_cache, b.private_cache, "{what}: private cache stats");
    assert_eq!(a.shared_cache, b.shared_cache, "{what}: shared cache stats");
    assert_eq!(a.reports, b.reports, "{what}: per-task reports");
}

/// Pre-refactor golden cycle counts over the spec × machine grid
/// (captured from the per-instruction engine before the block pipeline
/// existed): (benchmark, machine index, workers) →
/// (total_cycles, detailed_tasks, detailed_instructions, invalidations,
/// dram_accesses).
#[test]
fn simulation_results_match_pre_refactor_goldens() {
    /// (benchmark, machine index, workers, total_cycles, detailed_tasks,
    /// detailed_instructions, invalidations, dram_accesses)
    type GoldenCell = (Benchmark, usize, u32, u64, u64, u64, u64, u64);
    let machines =
        [MachineConfig::tiny_test(), MachineConfig::low_power(), MachineConfig::high_performance()];
    #[rustfmt::skip]
    let goldens: [GoldenCell; 18] = [
        (Benchmark::Spmv, 0, 1, 2_141_380, 1024, 482_733, 0, 105_561),
        (Benchmark::Spmv, 0, 4, 607_471, 1024, 482_733, 0, 133_351),
        (Benchmark::Spmv, 1, 1, 3_493_799, 1024, 482_733, 0, 104_502),
        (Benchmark::Spmv, 1, 4, 856_727, 1024, 482_733, 0, 104_502),
        (Benchmark::Spmv, 2, 1, 564_192, 1024, 482_733, 0, 0),
        (Benchmark::Spmv, 2, 4, 138_804, 1024, 482_733, 0, 0),
        (Benchmark::Histogram, 0, 1, 4_684_583, 16_384, 1_105_980, 0, 90_725),
        (Benchmark::Histogram, 0, 4, 1_259_849, 16_384, 1_105_980, 60_875, 90_702),
        (Benchmark::Histogram, 1, 1, 3_436_373, 16_384, 1_105_980, 0, 33_314),
        (Benchmark::Histogram, 1, 4, 973_261, 16_384, 1_105_980, 60_938, 33_314),
        (Benchmark::Histogram, 2, 1, 3_693_382, 16_384, 1_105_980, 0, 33_314),
        (Benchmark::Histogram, 2, 4, 924_852, 16_384, 1_105_980, 61_006, 33_314),
        (Benchmark::Freqmine, 0, 1, 4_727_018, 1932, 1_044_146, 0, 126_298),
        (Benchmark::Freqmine, 0, 4, 921_717, 1932, 1_044_146, 185_358, 80_658),
        (Benchmark::Freqmine, 1, 1, 1_353_827, 1932, 1_044_146, 0, 334),
        (Benchmark::Freqmine, 1, 4, 397_557, 1932, 1_044_146, 73_347, 334),
        (Benchmark::Freqmine, 2, 1, 1_058_451, 1932, 1_044_146, 0, 0),
        (Benchmark::Freqmine, 2, 4, 352_943, 1932, 1_044_146, 75_266, 0),
    ];
    let scale = ScaleConfig::quick();
    let mut programs: std::collections::HashMap<Benchmark, taskpoint_repro::runtime::Program> =
        std::collections::HashMap::new();
    for (bench, machine_idx, workers, cycles, tasks, instrs, invalidations, dram) in goldens {
        let program = programs.entry(bench).or_insert_with(|| bench.generate(&scale));
        let machine = &machines[machine_idx];
        let r = Simulation::builder(program, machine.clone())
            .workers(workers)
            .build()
            .run(&mut DetailedOnly);
        let what = format!("{bench}/{}/{workers}t", machine.name);
        assert_eq!(r.total_cycles, cycles, "{what}: total_cycles");
        assert_eq!(r.detailed_tasks, tasks, "{what}: detailed_tasks");
        assert_eq!(r.detailed_instructions, instrs, "{what}: detailed_instructions");
        assert_eq!(r.invalidations, invalidations, "{what}: invalidations");
        assert_eq!(r.dram_accesses, dram, "{what}: dram_accesses");
    }
}

/// FNV checksum over the complete collected report stream: every field of
/// every [`TaskReport`](taskpoint_repro::sim::TaskReport) in completion
/// order. Far stricter than the aggregate grid above — a single shifted
/// start cycle, worker assignment or concurrency value changes the sum.
fn report_checksum(r: &SimResult) -> u64 {
    let mut bytes = Vec::new();
    for t in &r.reports {
        bytes.extend_from_slice(&t.task.index().to_le_bytes());
        bytes.extend_from_slice(&t.type_id.0.to_le_bytes());
        bytes.extend_from_slice(&t.worker.0.to_le_bytes());
        bytes.extend_from_slice(&t.start.to_le_bytes());
        bytes.extend_from_slice(&t.end.to_le_bytes());
        bytes.extend_from_slice(&t.instructions.to_le_bytes());
        bytes.extend_from_slice(&t.concurrency.to_le_bytes());
    }
    fnv(&bytes)
}

/// Golden grid extension captured from the chunked lockstep engine
/// immediately before the discrete-event refactor: a Cholesky benchmark
/// grid over all three homogeneous machines. The event engine must
/// reproduce every cell exactly — heterogeneity changes what the
/// simulator *can* model, not what it *does* model.
#[test]
fn event_engine_preserves_pre_refactor_cholesky_goldens() {
    /// (benchmark, machine index, workers, total_cycles, detailed_tasks,
    /// detailed_instructions, invalidations, dram_accesses)
    type GoldenCell = (Benchmark, usize, u32, u64, u64, u64, u64, u64);
    let machines =
        [MachineConfig::tiny_test(), MachineConfig::low_power(), MachineConfig::high_performance()];
    #[rustfmt::skip]
    let goldens: [GoldenCell; 6] = [
        (Benchmark::Cholesky, 0, 1, 3_325_737, 19_600, 1_449_669, 0, 36_874),
        (Benchmark::Cholesky, 0, 4, 833_204, 19_600, 1_449_669, 1574, 36_875),
        (Benchmark::Cholesky, 1, 1, 6_272_562, 19_600, 1_449_669, 0, 34_152),
        (Benchmark::Cholesky, 1, 4, 1_571_907, 19_600, 1_449_669, 1547, 34_149),
        (Benchmark::Cholesky, 2, 1, 1_119_812, 19_600, 1_449_669, 0, 0),
        (Benchmark::Cholesky, 2, 4, 282_965, 19_600, 1_449_669, 1596, 0),
    ];
    let program = Benchmark::Cholesky.generate(&ScaleConfig::quick());
    for (bench, machine_idx, workers, cycles, tasks, instrs, invalidations, dram) in goldens {
        let machine = &machines[machine_idx];
        let r = Simulation::builder(&program, machine.clone())
            .workers(workers)
            .build()
            .run(&mut DetailedOnly);
        let what = format!("{bench}/{}/{workers}t", machine.name);
        assert_eq!(r.total_cycles, cycles, "{what}: total_cycles");
        assert_eq!(r.detailed_tasks, tasks, "{what}: detailed_tasks");
        assert_eq!(r.detailed_instructions, instrs, "{what}: detailed_instructions");
        assert_eq!(r.invalidations, invalidations, "{what}: invalidations");
        assert_eq!(r.dram_accesses, dram, "{what}: dram_accesses");
    }
}

/// Report-stream checksums captured from the chunked lockstep engine
/// immediately before the discrete-event refactor. These pin the *entire*
/// per-task timeline (start/end/worker/concurrency of every instance),
/// so any reordering introduced by the event scheduler — even one that
/// leaves aggregate counters intact — fails here.
#[test]
fn event_engine_preserves_pre_refactor_report_streams() {
    let machines =
        [MachineConfig::tiny_test(), MachineConfig::low_power(), MachineConfig::high_performance()];
    #[rustfmt::skip]
    let goldens: [(Benchmark, usize, u32, u64, u64); 4] = [
        (Benchmark::Spmv,      0, 2, 0x3c4185bc0aa688c2, 1_107_927),
        (Benchmark::Cholesky,  1, 4, 0x2d227659ca7aee93, 1_571_907),
        (Benchmark::Histogram, 2, 4, 0xa451b8c889862bb0, 924_852),
        (Benchmark::Freqmine,  0, 1, 0x489d418a2adf1071, 4_727_018),
    ];
    let scale = ScaleConfig::quick();
    for (bench, machine_idx, workers, checksum, cycles) in goldens {
        let program = bench.generate(&scale);
        let r = Simulation::builder(&program, machines[machine_idx].clone())
            .workers(workers)
            .collect_reports(true)
            .build()
            .run(&mut DetailedOnly);
        let what = format!("{bench}/{}/{workers}t", machines[machine_idx].name);
        assert_eq!(r.total_cycles, cycles, "{what}: total_cycles");
        assert_eq!(report_checksum(&r), checksum, "{what}: report stream drifted");
    }
}

/// The speculative parallel detail layer
/// (`SimulationBuilder::detail_threads`) must leave every golden cell and
/// every golden report-stream checksum untouched: commit is
/// replay-validated against the sequential event order and abort falls
/// back to it, so thread count can never move a simulated bit. Exercised
/// with the speculation floor lowered to make short benchmark tasks
/// eligible — the point is maximal opportunity to diverge, not speed.
#[test]
fn detail_threads_preserve_golden_results_and_checksums() {
    let machines =
        [MachineConfig::tiny_test(), MachineConfig::low_power(), MachineConfig::high_performance()];
    #[rustfmt::skip]
    let goldens: [(Benchmark, usize, u32, u64, u64); 4] = [
        (Benchmark::Spmv,      0, 2, 0x3c4185bc0aa688c2, 1_107_927),
        (Benchmark::Cholesky,  1, 4, 0x2d227659ca7aee93, 1_571_907),
        (Benchmark::Histogram, 2, 4, 0xa451b8c889862bb0, 924_852),
        (Benchmark::Freqmine,  0, 1, 0x489d418a2adf1071, 4_727_018),
    ];
    let scale = ScaleConfig::quick();
    for (bench, machine_idx, workers, checksum, cycles) in goldens {
        let program = bench.generate(&scale);
        for threads in [1usize, 2, 4] {
            let r = Simulation::builder(&program, machines[machine_idx].clone())
                .workers(workers)
                .detail_threads(threads)
                .parallel_min_task_instructions(1)
                .collect_reports(true)
                .build()
                .run(&mut DetailedOnly);
            let what =
                format!("{bench}/{}/{workers}t @ {threads} threads", machines[machine_idx].name);
            assert_eq!(r.total_cycles, cycles, "{what}: total_cycles");
            assert_eq!(report_checksum(&r), checksum, "{what}: report stream drifted");
        }
    }
}

/// Block capacity 1 degenerates to per-instruction execution; results of
/// every capacity must coincide bit for bit (chunk boundaries are
/// enforced per instruction, not per block).
#[test]
fn block_capacity_does_not_affect_simulated_timing() {
    let scale = ScaleConfig::quick();
    let cases = [
        (Benchmark::Spmv, MachineConfig::tiny_test(), 1u32),
        (Benchmark::Spmv, MachineConfig::tiny_test(), 4),
        (Benchmark::Spmv, MachineConfig::low_power(), 4),
        (Benchmark::Histogram, MachineConfig::tiny_test(), 4),
    ];
    for (bench, machine, workers) in cases {
        let program = bench.generate(&scale);
        let reference = run_detailed(&program, &machine, workers, 1);
        for capacity in [7usize, 256] {
            let got = run_detailed(&program, &machine, workers, capacity);
            assert_identical(
                &got,
                &reference,
                &format!("{bench}/{}/{workers}t capacity {capacity}", machine.name),
            );
        }
    }
}

/// Attaching telemetry — disabled *or* recording — must not move a single
/// simulated bit: the golden Cholesky cell still reproduces exactly, and
/// the recording run's result is identical to the unobserved run's,
/// per-task reports included. (The observer only watches; the no-op sink
/// compiles to nothing and the recording sink only copies events out.)
#[test]
fn telemetry_does_not_perturb_golden_results() {
    use taskpoint_repro::sim::Telemetry;
    let program = Benchmark::Cholesky.generate(&ScaleConfig::quick());
    let machine = MachineConfig::tiny_test();
    let plain = run_detailed(&program, &machine, 4, 256);
    assert_eq!(plain.total_cycles, 833_204, "golden cell (pre-telemetry capture)");
    for telemetry in [Telemetry::disabled(), Telemetry::recording()] {
        let recording = telemetry.is_recording();
        let observed = Simulation::builder(&program, machine.clone())
            .workers(4)
            .collect_reports(true)
            .telemetry(telemetry.clone())
            .build()
            .run(&mut DetailedOnly);
        assert_identical(&observed, &plain, if recording { "recording" } else { "disabled" });
        let report = telemetry.take_report();
        assert_eq!(report.is_some(), recording);
        if let Some(report) = report {
            assert!(!report.events.is_empty(), "recording run captured events");
        }
    }
}

/// The always-on cycle accounting is observation, not perturbation: on
/// every golden cell the per-group `CycleAccount` taxonomy sums exactly
/// to total core ticks (busy + idle = total_cycles × cores), while the
/// golden cycle counts themselves stay untouched (asserted against the
/// same pre-refactor grid as `simulation_results_match_pre_refactor_goldens`).
#[test]
fn cycle_accounting_sums_to_total_on_golden_cells() {
    let machines =
        [MachineConfig::tiny_test(), MachineConfig::low_power(), MachineConfig::high_performance()];
    // Golden cycle counts from the pre-refactor grid above (one cell per
    // benchmark × machine at both worker counts), plus a heterogeneous
    // machine where accounting must split per group.
    #[rustfmt::skip]
    let goldens: [(Benchmark, usize, u32, u64); 6] = [
        (Benchmark::Spmv,      0, 1, 2_141_380),
        (Benchmark::Spmv,      2, 4,   138_804),
        (Benchmark::Histogram, 1, 1, 3_436_373),
        (Benchmark::Histogram, 2, 4,   924_852),
        (Benchmark::Freqmine,  0, 4,   921_717),
        (Benchmark::Freqmine,  1, 1, 1_353_827),
    ];
    let scale = ScaleConfig::quick();
    for (bench, machine_idx, workers, cycles) in goldens {
        let program = bench.generate(&scale);
        let machine = &machines[machine_idx];
        let r = run_detailed(&program, machine, workers, 256);
        let what = format!("{bench}/{}/{workers}t", machine.name);
        assert_eq!(r.total_cycles, cycles, "{what}: golden cycles moved");
        assert!(!r.cycle_accounts.is_empty(), "{what}: accounting always on");
        let mut cores = 0u32;
        for acct in &r.cycle_accounts {
            assert_eq!(
                acct.total(),
                r.total_cycles * acct.cores as u64,
                "{what}[{}]: taxonomy must sum to busy+idle ticks",
                acct.name
            );
            assert_eq!(acct.busy(), acct.total() - acct.idle, "{what}[{}]: busy", acct.name);
            cores += acct.cores;
        }
        assert_eq!(cores, workers, "{what}: account groups cover every core");
        // Percentiles are always on too: every detailed task contributed.
        assert_eq!(r.task_latency.count, r.detailed_tasks + r.fast_tasks, "{what}: latency count");
        assert!(r.task_latency.p50 <= r.task_latency.p99, "{what}: p50<=p99");
        assert!(r.task_latency.p99 <= r.task_latency.p999, "{what}: p99<=p999");
    }
    // Heterogeneous: one account per core group, same invariant.
    let program = Benchmark::Cholesky.generate(&scale);
    let machine = MachineConfig::big_little(2, 2);
    let r = run_detailed(&program, &machine, 4, 256);
    assert_eq!(r.cycle_accounts.len(), 2, "one account per hetero group");
    assert_eq!(r.cycle_accounts[0].name, "big");
    assert_eq!(r.cycle_accounts[1].name, "little");
    for acct in &r.cycle_accounts {
        assert_eq!(
            acct.total(),
            r.total_cycles * acct.cores as u64,
            "hetero[{}]: taxonomy must sum to busy+idle ticks",
            acct.name
        );
    }
}

/// A simulation driven by recorded traces (binary `encode` format through
/// `RecordedTraces`) reproduces the procedural run bit for bit.
#[test]
fn recorded_traces_reproduce_the_procedural_run() {
    let program = Benchmark::Spmv.generate(&ScaleConfig::quick());
    let machine = MachineConfig::tiny_test();
    let recorded = RecordedTraces::record_program(&program);
    recorded.verify_against(&program).expect("recording matches program");
    let procedural = run_detailed(&program, &machine, 2, 256);
    let replayed = Simulation::builder(&program, machine)
        .workers(2)
        .collect_reports(true)
        .traces(Box::new(recorded))
        .build()
        .run(&mut DetailedOnly);
    assert_identical(&replayed, &procedural, "recorded vs procedural");
}
