//! Property tests for the log₂-bucketed [`Histogram`] and its end-to-end
//! determinism contract.
//!
//! The algebraic properties (a deterministic-seed sweep standing in for
//! quickcheck, which the repo deliberately doesn't vendor):
//!
//! 1. **Merge is commutative and associative** — shard order can never
//!    change a merged distribution.
//! 2. **Merged == whole-stream** — recording a stream split across any
//!    number of shards and merging equals recording it whole (the
//!    Chan-style contract `StreamingMoments` follows for moments).
//! 3. **Bucket monotonicity** — bucket bounds partition `u64` in order,
//!    every value lands in exactly its bucket, and `approx_quantile` is
//!    monotone in `q`.
//! 4. **End-to-end byte identity** — `canonical_text()` (which includes
//!    every histogram line) is byte-identical across 1/2/4 simulated
//!    workers *with the same worker count* and across 1/2/4 detail
//!    threads, because shard histograms merge only at deterministic
//!    commit points and replay forks never record.

use taskpoint_repro::sim::{DetailedOnly, MachineConfig, ProceduralTraces, Simulation, Telemetry};
use taskpoint_repro::taskpoint::run_reference_observed;
use taskpoint_repro::telemetry::Histogram;
use taskpoint_repro::workloads::{Benchmark, ScaleConfig};

/// Deterministic pseudo-random u64 stream (splitmix64).
fn stream(seed: u64, len: usize) -> Vec<u64> {
    let mut state = seed;
    (0..len)
        .map(|_| {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        })
        // Mix magnitudes: mostly small latencies, a heavy tail, some zeros.
        .map(|z| match z % 10 {
            0 => 0,
            1..=6 => z % 1000,
            7 | 8 => z % 1_000_000,
            _ => z,
        })
        .collect()
}

fn record_all(values: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

#[test]
fn merge_is_commutative() {
    for seed in 0..8 {
        let a = record_all(&stream(seed, 500));
        let b = record_all(&stream(seed + 100, 333));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "seed {seed}: a∪b == b∪a");
    }
}

#[test]
fn merge_is_associative() {
    for seed in 0..8 {
        let a = record_all(&stream(seed, 100));
        let b = record_all(&stream(seed + 50, 200));
        let c = record_all(&stream(seed + 99, 300));
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right, "seed {seed}: (a∪b)∪c == a∪(b∪c)");
    }
}

#[test]
fn merged_shards_equal_the_whole_stream() {
    for seed in 0..8 {
        let values = stream(seed, 1024);
        let whole = record_all(&values);
        for shards in [2usize, 3, 7, 16] {
            let mut merged = Histogram::new();
            for chunk in values.chunks(values.len().div_ceil(shards)) {
                merged.merge(&record_all(chunk));
            }
            assert_eq!(merged, whole, "seed {seed}, {shards} shards");
            // Identity element: merging an empty histogram changes nothing.
            merged.merge(&Histogram::new());
            assert_eq!(merged, whole, "seed {seed}: empty merge is identity");
        }
    }
}

#[test]
fn bucket_bounds_partition_u64_monotonically() {
    let mut prev_hi: Option<u64> = None;
    for index in 0..65 {
        let (lo, hi) = Histogram::bucket_bounds(index);
        assert!(lo <= hi, "bucket {index}: lo <= hi");
        match prev_hi {
            None => assert_eq!(lo, 0, "bucket 0 starts at 0"),
            Some(p) => assert_eq!(lo, p + 1, "bucket {index} starts after bucket {}", index - 1),
        }
        prev_hi = Some(hi);
        // Every representative value lands in its own bucket.
        for v in [lo, hi, lo + (hi - lo) / 2] {
            assert_eq!(Histogram::bucket_index(v), index, "value {v}");
        }
    }
    assert_eq!(prev_hi, Some(u64::MAX), "the buckets cover all of u64");
}

#[test]
fn approx_quantile_is_monotone_and_bounded() {
    for seed in 0..4 {
        let h = record_all(&stream(seed, 2000));
        let mut prev = 0;
        for q in [0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0] {
            let v = h.approx_quantile(q).expect("non-empty histogram");
            assert!(v >= prev, "seed {seed}: quantile({q}) monotone");
            assert!(v <= h.max().unwrap(), "seed {seed}: quantile({q}) <= max");
            prev = v;
        }
        // The quantile never undershoots the true value's bucket: the
        // reported value is the bucket's upper bound (clamped to max).
        assert_eq!(h.approx_quantile(1.0), h.max());
    }
    assert_eq!(Histogram::new().approx_quantile(0.5), None);
}

fn reference_canonical(workers: u32) -> String {
    let program = Benchmark::Spmv.generate(&ScaleConfig::quick());
    let telemetry = Telemetry::recording();
    run_reference_observed(
        &program,
        MachineConfig::tiny_test(),
        workers,
        Box::new(ProceduralTraces),
        telemetry.clone(),
    );
    telemetry.take_report().expect("recording handle yields a report").canonical_text()
}

#[test]
fn canonical_text_is_byte_identical_across_worker_reruns() {
    for workers in [1u32, 2, 4] {
        let a = reference_canonical(workers);
        let b = reference_canonical(workers);
        assert_eq!(a, b, "{workers} workers: reruns byte-identical");
        assert!(a.contains("hist task.latency[0]"), "{workers} workers: task-latency histogram");
        assert!(a.contains("hist sched.ready_depth[0]"), "{workers} workers: depth histogram");
        assert!(
            a.contains("hist mem.access_latency[0]"),
            "{workers} workers: memory-latency histogram"
        );
    }
}

#[test]
fn canonical_text_is_byte_identical_across_detail_threads() {
    let program = Benchmark::Cholesky.generate(&ScaleConfig::quick());
    let machine = MachineConfig::tiny_test();
    let run = |threads: usize| {
        let telemetry = Telemetry::recording();
        let result = Simulation::builder(&program, machine.clone())
            .workers(4)
            .detail_threads(threads)
            .telemetry(telemetry.clone())
            .build()
            .run(&mut DetailedOnly);
        (result, telemetry.take_report().expect("report").canonical_text())
    };
    let (base_result, base_text) = run(1);
    assert!(base_text.contains("hist mem.access_latency[0]"));
    for threads in [2usize, 4] {
        let (result, text) = run(threads);
        assert_eq!(
            result.total_cycles, base_result.total_cycles,
            "{threads} detail threads: simulation bit-identity"
        );
        assert_eq!(text, base_text, "{threads} detail threads: canonical telemetry byte-identical");
    }
}
