//! Bit-identity of the speculative parallel detail layer.
//!
//! `SimulationBuilder::detail_threads(n)` may change how fast the detailed
//! mode executes, never what it computes. The contract under test:
//!
//! 1. **Identical results** — every deterministic field of a `SimResult`
//!    (per-task reports included) is identical at any thread count, on
//!    homogeneous and big.LITTLE machines, under full-detail and adaptive
//!    controllers. Only `wall_seconds` and the host-side
//!    `parallel_epochs` accounting may differ.
//! 2. **The layer actually engages** — on an eligible machine with a
//!    dependency-closed frontier, multi-threaded runs commit at least one
//!    speculative epoch (otherwise this whole file would pass vacuously).
//! 3. **Fallbacks stay sequential** — contention-dominated machines
//!    (single slow DRAM channel) and telemetry-recording runs never
//!    speculate.
//! 4. **Speculation really is concurrent** — wave members observably
//!    overlap on distinct host threads (the blocking-work scaling probe).
//! 5. **Campaign identity is unaffected** — `CellSpec` hashes and the
//!    `TASKPOINT_DETAIL_THREADS` override never leak into result content.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use proptest::prelude::*;
use taskpoint_repro::accuracy::{AdaptiveConfig, AdaptiveController};
use taskpoint_repro::runtime::{AccessMode, Program, RegionAccess, TaskInstanceId};
use taskpoint_repro::sim::{
    DetailedOnly, MachineConfig, ModeController, ProceduralTraces, SimResult, Simulation,
    Telemetry, TraceProvider,
};
use taskpoint_repro::taskpoint::{TaskPointConfig, TaskPointController};
use taskpoint_repro::trace::{AccessPattern, InstructionMix, MemRegion, TraceSource, TraceSpec};

/// A layered fork–join program: `layers` barriers of `width` mutually
/// independent tasks, every task of layer `k+1` reading what *all* of
/// layer `k` wrote. Each frontier is dependency-closed — exactly the
/// epoch shape the parallel layer speculates on — and footprints are
/// disjoint so waves can validate and commit.
fn barrier_program(width: u32, layers: u32, instructions: u64, seed: u64) -> Program {
    let mut b = Program::builder("barrier");
    let ty = b.add_type("work");
    let out_region = |layer: u32, i: u32| {
        MemRegion::new(0x6000_0000 + (u64::from(layer * width + i)) * 0x10_0000, 4096)
    };
    for layer in 0..layers {
        for i in 0..width {
            let trace = TraceSpec::builder()
                .seed(seed ^ (u64::from(layer * width + i) << 8))
                .code_seed(seed.rotate_left(17))
                .instructions(instructions)
                .mix(InstructionMix::compute_bound())
                .pattern(AccessPattern::sequential(8))
                .footprint(out_region(layer, i))
                .build();
            let mut accesses = vec![RegionAccess::new(out_region(layer, i), AccessMode::Out)];
            if layer > 0 {
                for p in 0..width {
                    accesses.push(RegionAccess::new(out_region(layer - 1, p), AccessMode::In));
                }
            }
            b.add_task(ty, trace, accesses);
        }
    }
    b.build()
}

fn run<C: ModeController>(
    program: &Program,
    machine: &MachineConfig,
    workers: u32,
    threads: usize,
    controller: &mut C,
) -> SimResult {
    Simulation::builder(program, machine.clone())
        .workers(workers)
        .detail_threads(threads)
        // The barrier programs use short tasks to keep the suite fast;
        // lower the speculation floor accordingly.
        .parallel_min_task_instructions(500)
        .collect_reports(true)
        .build()
        .run(controller)
}

/// Everything deterministic in a `SimResult` — the full contract, not just
/// aggregates. `wall_seconds` and `parallel_epochs` are host-side
/// execution metadata and legitimately differ.
fn assert_identical(a: &SimResult, b: &SimResult, what: &str) {
    assert_eq!(a.total_cycles, b.total_cycles, "{what}: total_cycles");
    assert_eq!(a.detailed_tasks, b.detailed_tasks, "{what}: detailed_tasks");
    assert_eq!(a.fast_tasks, b.fast_tasks, "{what}: fast_tasks");
    assert_eq!(a.detailed_instructions, b.detailed_instructions, "{what}: detailed_instructions");
    assert_eq!(a.fast_instructions, b.fast_instructions, "{what}: fast_instructions");
    assert_eq!(a.invalidations, b.invalidations, "{what}: invalidations");
    assert_eq!(a.dram_accesses, b.dram_accesses, "{what}: dram_accesses");
    assert_eq!(a.private_cache, b.private_cache, "{what}: private cache stats");
    assert_eq!(a.shared_cache, b.shared_cache, "{what}: shared cache stats");
    assert_eq!(a.groups, b.groups, "{what}: per-group stats");
    assert_eq!(a.workers, b.workers, "{what}: workers");
    assert_eq!(a.reports, b.reports, "{what}: per-task reports");
}

#[test]
fn thread_count_never_changes_results_and_epochs_commit() {
    let machines = [
        ("tiny", MachineConfig::tiny_test()),
        ("hp", MachineConfig::high_performance()),
        ("big_little", MachineConfig::big_little(2, 2)),
    ];
    let mut committed_somewhere = false;
    for (name, machine) in &machines {
        let program = barrier_program(4, 3, 3_000, 0xA5A5);
        let baseline = run(&program, machine, 4, 1, &mut DetailedOnly);
        assert_eq!(
            baseline.parallel_epochs,
            Default::default(),
            "{name}: a single-threaded run never speculates"
        );
        for threads in [2usize, 4, 8] {
            let got = run(&program, machine, 4, threads, &mut DetailedOnly);
            assert_identical(&got, &baseline, &format!("{name}/{threads} threads"));
            committed_somewhere |= got.parallel_epochs.committed > 0;
        }
    }
    assert!(
        committed_somewhere,
        "no machine committed a single epoch — the layer is not engaging and \
         every identity assertion above was vacuous"
    );
}

#[test]
fn contention_sensitive_machines_fall_back_to_sequential() {
    // low_power: one DRAM channel with a 16-cycle service time — the
    // static fallback rule keeps it on the exact sequential interleaving.
    let program = barrier_program(4, 2, 3_000, 0x17);
    let machine = MachineConfig::low_power();
    let baseline = run(&program, &machine, 4, 1, &mut DetailedOnly);
    let threaded = run(&program, &machine, 4, 8, &mut DetailedOnly);
    assert_identical(&threaded, &baseline, "low_power/8 threads");
    assert_eq!(
        threaded.parallel_epochs,
        Default::default(),
        "ineligible machine must not attempt speculation"
    );
}

#[test]
fn adaptive_and_lazy_policies_are_thread_count_invariant() {
    let program = barrier_program(4, 4, 3_000, 0xBEEF);
    for (name, machine) in
        [("tiny", MachineConfig::tiny_test()), ("big_little", MachineConfig::big_little(2, 2))]
    {
        let adaptive_at = |threads: usize| {
            let mut c = AdaptiveController::new(AdaptiveConfig::new(0.1));
            run(&program, &machine, 4, threads, &mut c)
        };
        let lazy_at = |threads: usize| {
            let mut c = TaskPointController::new(TaskPointConfig::lazy());
            run(&program, &machine, 4, threads, &mut c)
        };
        let adaptive_base = adaptive_at(1);
        let lazy_base = lazy_at(1);
        for threads in [2usize, 4] {
            assert_identical(
                &adaptive_at(threads),
                &adaptive_base,
                &format!("{name}/adaptive/{threads} threads"),
            );
            assert_identical(
                &lazy_at(threads),
                &lazy_base,
                &format!("{name}/lazy/{threads} threads"),
            );
        }
    }
}

#[test]
fn telemetry_checksums_are_identical_and_recording_stays_sequential() {
    let program = barrier_program(4, 3, 3_000, 0x51);
    let machine = MachineConfig::tiny_test();
    let observed = |threads: usize| {
        let telemetry = Telemetry::recording();
        let result = Simulation::builder(&program, machine.clone())
            .workers(4)
            .detail_threads(threads)
            .parallel_min_task_instructions(500)
            .collect_reports(true)
            .telemetry(telemetry.clone())
            .build()
            .run(&mut DetailedOnly);
        (result, telemetry.take_report().expect("recording handle yields a report"))
    };
    let (base_result, base_report) = observed(1);
    for threads in [2usize, 4, 8] {
        let (result, report) = observed(threads);
        assert_identical(&result, &base_result, &format!("telemetry/{threads} threads"));
        assert_eq!(
            report.fnv64(),
            base_report.fnv64(),
            "{threads} threads: telemetry checksum drifted"
        );
        assert_eq!(
            report.canonical_text(),
            base_report.canonical_text(),
            "{threads} threads: canonical telemetry must be byte-identical"
        );
        // Telemetry pins per-event streams; recording runs must not take
        // the committed fast path (which skips chunk-level events).
        assert_eq!(
            result.parallel_epochs,
            Default::default(),
            "{threads} threads: recording run speculated"
        );
    }
}

/// A `TraceSource` whose first refill waits (bounded) until another wave
/// member's refill is also in flight, recording whether the overlap
/// happened — observable proof that speculative executions run on
/// distinct host threads rather than being serialized.
struct BlockingSource {
    inner: Box<dyn TraceSource + Send>,
    state: Arc<OverlapProbe>,
    waited: bool,
}

struct OverlapProbe {
    in_flight: AtomicUsize,
    peak: AtomicUsize,
}

impl TraceSource for BlockingSource {
    fn fill(&mut self, block: &mut taskpoint_repro::trace::InstBlock) -> usize {
        if !self.waited {
            self.waited = true;
            let now = self.state.in_flight.fetch_add(1, Ordering::SeqCst) + 1;
            self.state.peak.fetch_max(now, Ordering::SeqCst);
            let deadline = Instant::now() + Duration::from_secs(5);
            while self.state.in_flight.load(Ordering::SeqCst) < 2 && Instant::now() < deadline {
                std::thread::sleep(Duration::from_micros(50));
            }
            self.state
                .peak
                .fetch_max(self.state.in_flight.load(Ordering::SeqCst), Ordering::SeqCst);
            self.state.in_flight.fetch_sub(1, Ordering::SeqCst);
        }
        self.inner.fill(block)
    }
}

struct BlockingProvider {
    state: Arc<OverlapProbe>,
}

impl TraceProvider for BlockingProvider {
    fn source(&self, task: TaskInstanceId, spec: &TraceSpec) -> Box<dyn TraceSource> {
        ProceduralTraces.source(task, spec)
    }

    fn source_send(
        &self,
        task: TaskInstanceId,
        spec: &TraceSpec,
    ) -> Option<Box<dyn TraceSource + Send>> {
        Some(Box::new(BlockingSource {
            inner: ProceduralTraces.source_send(task, spec)?,
            state: Arc::clone(&self.state),
            waited: false,
        }))
    }
}

#[test]
fn speculative_wave_members_overlap_on_host_threads() {
    let program = barrier_program(2, 2, 3_000, 0x99);
    let machine = MachineConfig::tiny_test();
    let state =
        Arc::new(OverlapProbe { in_flight: AtomicUsize::new(0), peak: AtomicUsize::new(0) });
    let result = Simulation::builder(&program, machine.clone())
        .workers(2)
        .detail_threads(2)
        .parallel_min_task_instructions(500)
        .collect_reports(true)
        .traces(Box::new(BlockingProvider { state: Arc::clone(&state) }))
        .build()
        .run(&mut DetailedOnly);
    assert!(
        result.parallel_epochs.committed >= 1,
        "wave must commit for the probe to mean anything"
    );
    assert_eq!(
        state.peak.load(Ordering::SeqCst),
        2,
        "two wave members never overlapped — speculation is not actually parallel"
    );
    // And blocking inside the speculative refill changed nothing.
    let plain = run(&program, &machine, 2, 1, &mut DetailedOnly);
    assert_identical(&result, &plain, "blocking probe vs sequential");
}

/// `TASKPOINT_DETAIL_THREADS` reaches the high-level entry points, is
/// validated, and never changes simulated content or campaign identity.
/// (All env manipulation lives in this single test: integration tests in
/// one binary share the process environment.)
#[test]
fn env_override_is_validated_and_invisible_to_results_and_spec_hashes() {
    use taskpoint_repro::campaign::CellSpec;
    use taskpoint_repro::sim::detail_threads_from_env;
    use taskpoint_repro::taskpoint::run_reference;
    use taskpoint_repro::workloads::{Benchmark, ScaleConfig};

    let spec = || {
        CellSpec::sampled(
            Benchmark::Spmv,
            ScaleConfig::quick(),
            MachineConfig::tiny_test(),
            4,
            TaskPointConfig::lazy(),
        )
    };
    std::env::remove_var("TASKPOINT_DETAIL_THREADS");
    assert_eq!(detail_threads_from_env(), 1, "unset defaults to sequential");
    let hash_unset = spec().hash_hex();
    let program = barrier_program(4, 2, 3_000, 0x44);
    let result_unset = run_reference(&program, MachineConfig::tiny_test(), 4);

    std::env::set_var("TASKPOINT_DETAIL_THREADS", "4");
    assert_eq!(detail_threads_from_env(), 4);
    // The hash is a *content* address: two runs of the same spec at
    // different host parallelism must share a result-store record.
    assert_eq!(spec().hash_hex(), hash_unset, "detail_threads leaked into the spec hash");
    let result_env = run_reference(&program, MachineConfig::tiny_test(), 4);
    assert_identical(&result_env, &result_unset, "env-threaded reference run");
    std::env::remove_var("TASKPOINT_DETAIL_THREADS");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random fork–join shapes, machines and thread counts: the threaded
    /// engine reproduces the sequential engine bit for bit, reports
    /// included.
    #[test]
    fn any_thread_count_is_bit_identical(
        width in 2u32..5,
        layers in 1u32..4,
        instructions in 1_000u64..4_001,
        seed in any::<u64>(),
        machine_idx in 0usize..3,
        thread_idx in 0usize..4,
    ) {
        // Heterogeneous machines pin cores == workers, so size the
        // big.LITTLE variant to the generated width.
        let machines = [
            MachineConfig::tiny_test(),
            MachineConfig::high_performance(),
            MachineConfig::big_little(width.div_ceil(2), width / 2),
        ];
        let machine = &machines[machine_idx];
        let threads = [2usize, 3, 4, 8][thread_idx];
        let program = barrier_program(width, layers, instructions, seed);
        let baseline = run(&program, machine, width, 1, &mut DetailedOnly);
        let got = run(&program, machine, width, threads, &mut DetailedOnly);
        assert_identical(&got, &baseline, &format!("w{width} l{layers} m{machine_idx} t{threads}"));
    }
}
