//! Integration tests of the adaptive accuracy subsystem: the
//! confidence-driven policy against the fixed-budget policies, end to end
//! through workload generation, simulation and the campaign layer.

use std::sync::{Arc, OnceLock};

use taskpoint_repro::campaign::{Campaign, CellSpec};
use taskpoint_repro::sim::{MachineConfig, SimResult};
use taskpoint_repro::taskpoint::{run_adaptive, run_sampled, run_stratified, TaskPointConfig};
use taskpoint_repro::workloads::{Benchmark, ScaleConfig};

fn quick() -> ScaleConfig {
    ScaleConfig::quick()
}

/// The process-wide campaign: shared program + reference caches.
fn campaign() -> &'static Campaign {
    static CAMPAIGN: OnceLock<Campaign> = OnceLock::new();
    CAMPAIGN.get_or_init(Campaign::in_memory)
}

fn reference(bench: Benchmark, machine: MachineConfig, workers: u32) -> Arc<SimResult> {
    campaign().reference(bench, quick(), machine, workers)
}

fn cycles_error_percent(sampled: &SimResult, reference: &SimResult) -> f64 {
    100.0
        * ((sampled.total_cycles as f64 - reference.total_cycles as f64)
            / reference.total_cycles as f64)
            .abs()
}

/// The acceptance criterion of the accuracy subsystem: on a kernel
/// workload, the adaptive policy at a mid CI target must spend *strictly
/// fewer* detailed instances than the paper's periodic policy while
/// keeping the cycles error within the configured target.
#[test]
fn adaptive_mid_target_beats_periodic_budget_within_target_error() {
    let bench = Benchmark::Cholesky;
    let machine = MachineConfig::high_performance();
    let workers = 4;
    let target = 0.05; // the mid entry of ADAPTIVE_TARGETS
    let r = reference(bench, machine.clone(), workers);
    let program = campaign().program(bench, &quick());

    let (periodic, _) =
        run_sampled(&program, machine.clone(), workers, TaskPointConfig::periodic());
    let (adaptive, _, accuracy) =
        run_adaptive(&program, machine, workers, TaskPointConfig::adaptive(target));

    assert!(
        adaptive.detailed_tasks < periodic.detailed_tasks,
        "adaptive must spend fewer detailed instances: {} vs periodic's {}",
        adaptive.detailed_tasks,
        periodic.detailed_tasks
    );
    let err = cycles_error_percent(&adaptive, &r);
    assert!(
        err <= 100.0 * target,
        "adaptive cycles error {err:.2}% exceeds the {:.0}% target",
        100.0 * target
    );
    // Every converged cluster ended within the target (or was a rare
    // forced cluster, of which cholesky at this scale has none).
    assert!(accuracy.converged_units() >= 1);
    for c in &accuracy.clusters {
        if c.converged && !c.forced {
            if let Some(ci) = c.rel_ci {
                assert!(ci <= target + 1e-12, "unit {}: rel CI {ci} > {target}", c.unit);
            }
        }
    }
}

/// Tightening the target must never reduce detailed coverage, and the
/// error at the tightest target should not exceed the loosest target's
/// error band (the frontier is traded, not random). The stratified policy
/// traces the same frontier through its budget dial: bigger budgets never
/// sample less either.
#[test]
fn frontier_is_monotone_in_detail_spend() {
    let bench = Benchmark::Spmv;
    let machine = MachineConfig::low_power();
    let workers = 4;
    let program = campaign().program(bench, &quick());
    let mut detailed = Vec::new();
    for target in [0.10, 0.05, 0.02] {
        let (result, _, _) =
            run_adaptive(&program, machine.clone(), workers, TaskPointConfig::adaptive(target));
        detailed.push(result.detailed_tasks);
    }
    assert!(
        detailed.windows(2).all(|w| w[0] <= w[1]),
        "tighter CI targets must not sample less: {detailed:?}"
    );
    let mut stratified = Vec::new();
    for budget in [16u64, 64, 256] {
        let (result, _, _) = run_stratified(
            &program,
            machine.clone(),
            workers,
            TaskPointConfig::stratified(4, budget),
        );
        stratified.push(result.detailed_tasks);
    }
    assert!(
        stratified.windows(2).all(|w| w[0] <= w[1]),
        "bigger stratified budgets must not sample less: {stratified:?}"
    );
}

/// The head-to-head acceptance row of the stratified policy: at matched
/// detailed-instance spend on the adaptive acceptance cell
/// (cholesky / high-performance / 4 workers), two-phase stratified
/// sampling reaches a cycles error no worse than adaptive at the 5% CI
/// target. Neyman allocation spends the same budget where the pilot saw
/// variance instead of where convergence happened to stall.
#[test]
fn stratified_matches_adaptive_error_at_matched_detail_spend() {
    let bench = Benchmark::Cholesky;
    let machine = MachineConfig::high_performance();
    let workers = 4;
    let r = reference(bench, machine.clone(), workers);
    let program = campaign().program(bench, &quick());

    let (adaptive, _, _) =
        run_adaptive(&program, machine.clone(), workers, TaskPointConfig::adaptive(0.05));
    let adaptive_err = cycles_error_percent(&adaptive, &r);

    // Matched spend: start the stratified budget at the adaptive run's
    // detailed spend; warmup, pilot stragglers and band re-opening ride
    // on top of the budget, so if the first try overshoots, charge the
    // measured overhead against the budget and re-run once.
    let mut budget = adaptive.detailed_tasks;
    let (mut stratified, _, mut accuracy) =
        run_stratified(&program, machine.clone(), workers, TaskPointConfig::stratified(4, budget));
    if stratified.detailed_tasks > adaptive.detailed_tasks {
        budget = budget.saturating_sub(stratified.detailed_tasks - adaptive.detailed_tasks).max(8);
        let rerun =
            run_stratified(&program, machine, workers, TaskPointConfig::stratified(4, budget));
        (stratified, _, accuracy) = rerun;
    }
    let stratified_err = cycles_error_percent(&stratified, &r);

    assert!(
        stratified.detailed_tasks <= adaptive.detailed_tasks,
        "not a matched comparison: stratified spent {} detailed vs adaptive's {}",
        stratified.detailed_tasks,
        adaptive.detailed_tasks
    );
    assert!(
        stratified_err <= adaptive_err,
        "stratified at matched spend (budget {budget}) must not lose the head-to-head: \
         {stratified_err:.3}% vs adaptive@5%'s {adaptive_err:.3}%"
    );
    assert_eq!(accuracy.allocated.map(|a| a > 0), Some(true), "the Neyman allocation fired");
}

/// The `adaptive` campaign sweep end to end at quick scale: every cell
/// computes, adaptive cells carry CI fields, stratified cells carry the
/// pilot/budget/allocation fields (and no CI target), and the emitted
/// JSONL is deterministic across worker counts.
#[test]
fn adaptive_sweep_emits_ci_fields_deterministically() {
    use taskpoint_repro::campaign::{adaptive_specs, Executor, ResultStore};
    let specs: Vec<CellSpec> = adaptive_specs(quick());
    assert_eq!(specs.len(), 32);
    // Keep the in-process sweep small: the two external workloads (the
    // kernels are covered by the direct-run tests above, and CI runs the
    // full sweep through the campaign CLI).
    let external: Vec<CellSpec> =
        specs.into_iter().filter(|s| s.bench.name().starts_with("external-")).collect();
    assert_eq!(external.len(), 16);
    let a = Campaign::new(ResultStore::disabled(), Executor::new(1)).run(&external);
    let b = Campaign::new(ResultStore::disabled(), Executor::new(4)).run(&external);
    assert_eq!(a.jsonl(), b.jsonl(), "canonical JSONL must not depend on worker count");
    let mut adaptive_cells = 0;
    let mut stratified_cells = 0;
    for outcome in &a.outcomes {
        if let Some(m) = outcome.record.metrics.as_eval() {
            if let Some(target) = m.ci_target {
                adaptive_cells += 1;
                assert!(m.ci_confidence == Some(0.95));
                assert!(m.ci_units.unwrap() >= 1);
                assert!(outcome.record.to_json().contains("\"ci_target\":"));
                assert!(target > 0.0);
            }
            if let Some(budget) = m.strat_budget {
                stratified_cells += 1;
                assert!(m.ci_target.is_none(), "budget-driven cells have no CI target");
                assert!(m.ci_confidence == Some(0.95));
                assert_eq!(m.strat_pilot, Some(taskpoint_repro::campaign::STRATIFIED_PILOT));
                assert!(
                    m.strat_allocated.unwrap() <= budget,
                    "allocation exceeds the budget: {m:?}"
                );
                let json = outcome.record.to_json();
                assert!(json.contains("\"strat_budget\":"), "{json}");
                assert!(json.contains("\"strat_reopened\":"), "{json}");
            }
        }
    }
    assert_eq!(adaptive_cells, 6, "3 CI targets x 2 external workloads");
    assert_eq!(stratified_cells, 4, "2 budgets x 2 external workloads");
}
