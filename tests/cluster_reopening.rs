//! Concurrency-aware cluster re-opening, end to end through the engine.
//!
//! Both accuracy controllers keep per-concurrency-band moments and re-open
//! a converged cluster when the live concurrency shifts into a band whose
//! interval misses the target (the adaptive analogue of the paper's
//! Fig. 4a concurrency-change trigger). The contract pinned here:
//!
//! 1. A program whose parallelism *ramps* — a serial chain followed by
//!    wide barrier layers — triggers at least one `ClusterReopened` per
//!    shifted band, for the adaptive and the stratified controller alike.
//! 2. A *constant-concurrency* program (the chain alone) triggers zero
//!    re-opens: band re-opening must never fire spuriously.
//! 3. Telemetry accounting balances: per cluster the fidelity stream
//!    alternates `converged` / `reopened`, so the event counts satisfy
//!    `converged == reopened + #(clusters ending converged, not forced)`,
//!    and the `reopened` line count equals both the controller's live
//!    counter and the end-of-run report's re-opened band tally.

use taskpoint_repro::accuracy::{
    concurrency_band, AdaptiveConfig, AdaptiveController, StratifiedConfig, StratifiedController,
};
use taskpoint_repro::runtime::{AccessMode, Program, RegionAccess};
use taskpoint_repro::sim::{MachineConfig, ModeController, SimResult, Simulation, Telemetry};
use taskpoint_repro::trace::{AccessPattern, InstructionMix, MemRegion, TraceSpec};

/// A layered fork–join program with a *per-layer* width: layer `k` holds
/// `widths[k]` mutually independent tasks, and every task of layer `k+1`
/// reads what all of layer `k` wrote. The same generator shape as
/// `tests/parallel_determinism.rs`' `barrier_program`, generalized so the
/// live concurrency can be ramped mid-program: a prefix of width-1 layers
/// is a serial chain (concurrency pinned at 1), a suffix of width-`w`
/// layers sweeps assignment-time concurrency through `1..=w`.
fn ramp_program(widths: &[u32], instructions: u64, seed: u64) -> Program {
    let mut b = Program::builder("ramp");
    let ty = b.add_type("work");
    let region = |slot: u32| MemRegion::new(0x6000_0000 + u64::from(slot) * 0x10_0000, 4096);
    let mut slot = 0u32;
    let mut prev_layer: Vec<u32> = Vec::new();
    for &width in widths {
        let mut this_layer = Vec::with_capacity(width as usize);
        for _ in 0..width {
            let trace = TraceSpec::builder()
                .seed(seed ^ (u64::from(slot) << 8))
                .code_seed(seed.rotate_left(17))
                .instructions(instructions)
                .mix(InstructionMix::compute_bound())
                .pattern(AccessPattern::sequential(8))
                .footprint(region(slot))
                .build();
            let mut accesses = vec![RegionAccess::new(region(slot), AccessMode::Out)];
            for &p in &prev_layer {
                accesses.push(RegionAccess::new(region(p), AccessMode::In));
            }
            b.add_task(ty, trace, accesses);
            this_layer.push(slot);
            slot += 1;
        }
        prev_layer = this_layer;
    }
    b.build()
}

/// A serial chain followed by wide barrier layers: concurrency holds at 1,
/// then repeatedly sweeps `1..=4` (bands 0, 1 and 2).
fn ramp_widths() -> Vec<u32> {
    let mut widths = vec![1u32; 10];
    widths.extend([4u32; 8]);
    widths
}

fn run<C: ModeController>(program: &Program, workers: u32, controller: &mut C) -> SimResult {
    Simulation::builder(program, MachineConfig::tiny_test())
        .workers(workers)
        .detail_threads(1)
        .parallel_min_task_instructions(500)
        .build()
        .run(controller)
}

fn fidelity_lines(telemetry: &Telemetry, action: &str) -> usize {
    let text = telemetry.take_report().expect("recording handle yields a report").canonical_text();
    text.lines().filter(|l| l.contains(&format!("action={action}"))).count()
}

/// All four fidelity-accounting counts of one observed run.
struct FidelityCounts {
    converged: usize,
    reopened: usize,
    rare: usize,
}

fn fidelity_counts(telemetry: &Telemetry) -> FidelityCounts {
    let text = telemetry.take_report().expect("recording handle yields a report").canonical_text();
    let count = |action: &str| {
        let needle = format!("action={action}");
        text.lines().filter(|l| l.split_whitespace().any(|field| field == needle)).count()
    };
    FidelityCounts {
        converged: count("converged"),
        reopened: count("reopened"),
        rare: count("rare-converged"),
    }
}

#[test]
fn concurrency_ramp_reopens_adaptive_clusters_once_per_shifted_band() {
    let program = ramp_program(&ramp_widths(), 3_000, 0xC0FFEE);
    let telemetry = Telemetry::recording();
    let mut controller = AdaptiveController::new(AdaptiveConfig::new(0.1).with_warmup(0))
        .with_telemetry(telemetry.clone());
    let result = run(&program, 4, &mut controller);
    let (stats, accuracy) = controller.into_parts();

    // The chain converged the single cluster at band 0; the width-4
    // layers sweep assignment-time concurrency through 1..=4, shifting
    // into bands 1 (concurrency 2–3) and 2 (concurrency 4) — each must
    // re-open the cluster exactly once.
    assert!(result.fast_tasks > 0, "the cluster must converge for re-opening to be testable");
    assert!(stats.reopened >= 1, "a concurrency ramp must re-open the converged cluster");
    assert_eq!(stats.reopened, 2, "one re-open per shifted band (bands 1 and 2)");
    assert_eq!(stats.rare_forced, 0, "nothing rare in a single-cluster ramp");
    assert_eq!(accuracy.reopened_bands(), 2);

    let cluster = &accuracy.clusters[0];
    let reopened: Vec<u32> = cluster.bands.iter().filter(|b| b.reopened).map(|b| b.band).collect();
    assert_eq!(reopened, vec![1, 2], "exactly the bands the ramp shifted into");
    assert!(
        cluster.bands.iter().any(|b| b.band == 0 && !b.reopened),
        "the chain's own band never re-opens"
    );
    assert_eq!(concurrency_band(1), 0);
    assert_eq!(concurrency_band(2), 1);
    assert_eq!(concurrency_band(4), 2);

    // Telemetry accounting: the fidelity stream alternates converged /
    // reopened per cluster, so the totals balance against the end state.
    let counts = fidelity_counts(&telemetry);
    assert_eq!(counts.reopened, stats.reopened as usize);
    assert_eq!(counts.rare, 0);
    let ending_converged = accuracy.clusters.iter().filter(|c| c.converged && !c.forced).count();
    assert_eq!(
        counts.converged,
        counts.reopened + ending_converged,
        "every re-open must be matched by a re-convergence"
    );
}

#[test]
fn constant_concurrency_never_reopens_adaptive_clusters() {
    // The chain alone: concurrency is pinned at 1 for the whole run.
    let program = ramp_program(&[1u32; 18], 3_000, 0xC0FFEE);
    let telemetry = Telemetry::recording();
    let mut controller = AdaptiveController::new(AdaptiveConfig::new(0.1).with_warmup(0))
        .with_telemetry(telemetry.clone());
    let result = run(&program, 4, &mut controller);
    let (stats, accuracy) = controller.into_parts();

    assert!(result.fast_tasks > 0, "the cluster must converge for the zero to be meaningful");
    assert_eq!(stats.reopened, 0, "constant concurrency must never trigger a re-open");
    assert_eq!(accuracy.reopened_bands(), 0);
    assert_eq!(fidelity_lines(&telemetry, "reopened"), 0);
}

#[test]
fn concurrency_ramp_reopens_stratified_strata() {
    let program = ramp_program(&ramp_widths(), 3_000, 0xC0FFEE);
    let telemetry = Telemetry::recording();
    let mut controller = StratifiedController::new(StratifiedConfig::new(4, 10).with_warmup(0))
        .with_telemetry(telemetry.clone());
    controller.prime(program.instances().iter().map(|i| (i.type_id(), i.instructions())));
    let result = run(&program, 4, &mut controller);
    let (stats, accuracy) = controller.into_parts();

    assert!(result.fast_tasks > 0, "the stratum must converge for re-opening to be testable");
    assert!(stats.reopened >= 1, "the ramp must re-open the converged stratum");
    assert_eq!(accuracy.reopened_bands(), stats.reopened as usize);
    assert!(
        accuracy.clusters[0].bands.iter().any(|b| b.reopened && b.band > 0),
        "the re-opened band is one the ramp shifted into"
    );

    let counts = fidelity_counts(&telemetry);
    assert_eq!(counts.reopened, stats.reopened as usize);
    assert_eq!(counts.rare, 0, "the stratified controller has no rare-cluster cutoff");
    let ending_converged = accuracy.clusters.iter().filter(|c| c.converged).count();
    assert_eq!(counts.converged, counts.reopened + ending_converged);
}

#[test]
fn constant_concurrency_never_reopens_stratified_strata() {
    let program = ramp_program(&[1u32; 18], 3_000, 0xC0FFEE);
    let telemetry = Telemetry::recording();
    let mut controller = StratifiedController::new(StratifiedConfig::new(4, 10).with_warmup(0))
        .with_telemetry(telemetry.clone());
    controller.prime(program.instances().iter().map(|i| (i.type_id(), i.instructions())));
    let result = run(&program, 4, &mut controller);
    let (stats, accuracy) = controller.into_parts();

    assert!(result.fast_tasks > 0, "the stratum must converge for the zero to be meaningful");
    assert_eq!(stats.reopened, 0);
    assert_eq!(accuracy.reopened_bands(), 0);
    assert_eq!(fidelity_lines(&telemetry, "reopened"), 0);
}
