//! Allocation discipline of the detailed hot path's instruction blocks.
//!
//! The engine keeps one `InstBlock` per worker and recycles it across
//! task boundaries (`CoreComponent::spare_block`): a finished task's
//! block is cleared and handed to the worker's next detailed task, and a
//! committed speculative wave reclaims the never-filled sequential block
//! the same way. This file pins that discipline with the process-wide
//! construction counter `InstBlock::blocks_allocated()`.
//!
//! It deliberately contains a single `#[test]`: integration tests in one
//! binary run concurrently in one process, and any other test allocating
//! blocks would race the counter deltas measured here.

use taskpoint_repro::runtime::Program;
use taskpoint_repro::sim::{DetailedOnly, MachineConfig, SimResult, Simulation};
use taskpoint_repro::trace::{InstBlock, TraceSpec};
use taskpoint_repro::workloads::{Benchmark, ScaleConfig};

fn wide_program(tasks: u64) -> Program {
    let mut b = Program::builder("wide");
    let ty = b.add_type("work");
    for i in 0..tasks {
        b.add_task(ty, TraceSpec::synthetic(i, 2_000), vec![]);
    }
    b.build()
}

fn run_counting(program: &Program, workers: u32, threads: usize) -> (SimResult, u64) {
    let before = InstBlock::blocks_allocated();
    let result = Simulation::builder(program, MachineConfig::tiny_test())
        .workers(workers)
        .detail_threads(threads)
        .parallel_min_task_instructions(500)
        .build()
        .run(&mut DetailedOnly);
    (result, InstBlock::blocks_allocated() - before)
}

#[test]
fn workers_recycle_one_block_across_all_task_boundaries() {
    // Sequential engine: exactly one block per worker, no matter how many
    // tasks cross each worker — every boundary reuses the spare.
    let wide = wide_program(64);
    for workers in [1u32, 2, 4] {
        for round in 0..2 {
            let (result, allocated) = run_counting(&wide, workers, 1);
            assert_eq!(result.detailed_tasks, 64);
            assert_eq!(
                allocated,
                u64::from(workers),
                "{workers} workers, round {round}: the sequential engine must \
                 allocate exactly one block per worker and recycle it"
            );
        }
    }

    // A benchmark with a dependency DAG takes the same bound — recycling
    // must not depend on the program shape.
    let cholesky = Benchmark::Cholesky.generate(&ScaleConfig::quick());
    let (result, allocated) = run_counting(&cholesky, 4, 1);
    assert!(result.detailed_tasks > 1_000);
    assert_eq!(allocated, 4, "cholesky/4 workers: one block per worker");

    // Speculative runs additionally allocate one block per wave member
    // per attempted epoch (the speculation executes off to the side), but
    // the engine-side blocks still recycle: the total stays bounded by
    // workers × (1 + attempted epochs), far below one-per-task. A
    // four-task frontier on four workers guarantees at least one attempt.
    let narrow = wide_program(4);
    let (result, allocated) = run_counting(&narrow, 4, 4);
    let attempts = result.parallel_epochs.committed + result.parallel_epochs.aborted;
    assert!(attempts >= 1, "a dependency-closed frontier must attempt an epoch");
    assert!(
        allocated <= 4 * (1 + attempts),
        "parallel run allocated {allocated} blocks over {attempts} epoch attempts"
    );
}
