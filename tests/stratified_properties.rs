//! Statistical property suite of the two-phase stratified sampling policy.
//!
//! The pure Neyman allocator is pinned by randomized invariants —
//! allocations conserve the budget *exactly* under integer rounding,
//! raising one stratum's variance never costs it samples, zero-variance
//! strata stay at the floor — and the end-to-end policy is pinned through
//! the engine: `pilot_samples == budget` degenerates to a pilot-only run,
//! a serial program spends warmup + budget detailed instances to the
//! instance, and the resulting `AccuracyReport`s and campaign records are
//! byte-identical across detail-thread and executor worker counts.

use proptest::prelude::*;
use taskpoint_repro::accuracy::{neyman_allocate, StratifiedConfig, StratifiedController, Stratum};
use taskpoint_repro::runtime::{AccessMode, Program, RegionAccess};
use taskpoint_repro::sim::{MachineConfig, Simulation};
use taskpoint_repro::taskpoint::{run_stratified, TaskPointConfig};
use taskpoint_repro::trace::{AccessPattern, InstructionMix, MemRegion, TraceSpec};

/// SplitMix64 — derives per-task variation from a proptest seed.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A serial chain of `len` tasks cycling through `ntypes` task types.
/// Dependencies pin the concurrency at 1 (band 0 only, so band
/// re-opening never perturbs the budget arithmetic), and instruction
/// counts vary within one octave — one `(type, size-class)` stratum per
/// type under the default granularity, with genuine IPC variance.
fn chain_program(len: u32, ntypes: u32, seed: u64) -> Program {
    let mut b = Program::builder("chain");
    let types: Vec<_> = (0..ntypes).map(|t| b.add_type(format!("work{t}"))).collect();
    let region = |i: u32| MemRegion::new(0x6000_0000 + u64::from(i) * 0x10_0000, 4096);
    for i in 0..len {
        // 2048..=3547: a single octave size class.
        let instructions = 2048 + mix(seed ^ u64::from(i)) % 1500;
        let trace = TraceSpec::builder()
            .seed(seed ^ (u64::from(i) << 8))
            .code_seed(mix(seed ^ u64::from(i)).rotate_left(17))
            .instructions(instructions)
            .mix(InstructionMix::compute_bound())
            .pattern(AccessPattern::sequential(8))
            .footprint(region(i))
            .build();
        let mut accesses = vec![RegionAccess::new(region(i), AccessMode::Out)];
        if i > 0 {
            accesses.push(RegionAccess::new(region(i - 1), AccessMode::In));
        }
        b.add_task(types[(i % ntypes) as usize], trace, accesses);
    }
    b.build()
}

/// A layered fork–join program (the `parallel_determinism` barrier shape):
/// `layers` barriers of `width` independent tasks, layer `k+1` reading
/// everything layer `k` wrote.
fn barrier_program(width: u32, layers: u32, instructions: u64, seed: u64) -> Program {
    let mut b = Program::builder("barrier");
    let ty = b.add_type("work");
    let region = |layer: u32, i: u32| {
        MemRegion::new(0x6000_0000 + u64::from(layer * width + i) * 0x10_0000, 4096)
    };
    for layer in 0..layers {
        for i in 0..width {
            let trace = TraceSpec::builder()
                .seed(seed ^ (u64::from(layer * width + i) << 8))
                .code_seed(seed.rotate_left(17))
                .instructions(instructions)
                .mix(InstructionMix::compute_bound())
                .pattern(AccessPattern::sequential(8))
                .footprint(region(layer, i))
                .build();
            let mut accesses = vec![RegionAccess::new(region(layer, i), AccessMode::Out)];
            if layer > 0 {
                for p in 0..width {
                    accesses.push(RegionAccess::new(region(layer - 1, p), AccessMode::In));
                }
            }
            b.add_task(ty, trace, accesses);
        }
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// With any positive-variance strata, integer rounding conserves the
    /// budget *exactly* — never one sample over or under — and every
    /// stratum keeps at least the floor whenever the floors are funded.
    #[test]
    fn allocations_sum_exactly_to_the_budget(
        raw in prop::collection::vec((1u64..500, 0.001f64..10.0), 1..8),
        budget in 0u64..4000,
        floor in 0u64..5,
    ) {
        let strata: Vec<Stratum> =
            raw.iter().map(|&(size, std_dev)| Stratum { size, std_dev }).collect();
        let alloc = neyman_allocate(budget, &strata, floor);
        prop_assert_eq!(alloc.len(), strata.len());
        prop_assert_eq!(alloc.iter().sum::<u64>(), budget);
        if budget >= floor * strata.len() as u64 {
            prop_assert!(alloc.iter().all(|&a| a >= floor), "{alloc:?} below floor {floor}");
        }
    }

    /// Raising one stratum's pilot stddev at fixed size (all else equal)
    /// never decreases that stratum's allocation.
    #[test]
    fn allocation_is_monotone_in_one_stratum_stddev(
        raw in prop::collection::vec((1u64..500, 0.001f64..10.0), 1..8),
        which in 0usize..8,
        factor in 0.1f64..5.0,
        budget in 0u64..4000,
        floor in 0u64..5,
    ) {
        let base: Vec<Stratum> =
            raw.iter().map(|&(size, std_dev)| Stratum { size, std_dev }).collect();
        let j = which % base.len();
        let mut raised = base.clone();
        raised[j].std_dev *= 1.0 + factor;
        let before = neyman_allocate(budget, &base, floor);
        let after = neyman_allocate(budget, &raised, floor);
        prop_assert!(
            after[j] >= before[j],
            "raising stratum {j}'s stddev cost it samples: {after:?} vs {before:?} ({base:?})"
        );
        prop_assert_eq!(after.iter().sum::<u64>(), budget);
    }

    /// A stratum with no usable variance signal — zero, negative or
    /// non-finite stddev — receives exactly the floor, nothing more.
    #[test]
    fn zero_variance_strata_get_exactly_the_floor(
        raw in prop::collection::vec((1u64..500, 0.001f64..10.0), 2..8),
        which in 0usize..8,
        kind in 0u8..3,
        budget in 0u64..4000,
        floor in 0u64..5,
    ) {
        let mut strata: Vec<Stratum> =
            raw.iter().map(|&(size, std_dev)| Stratum { size, std_dev }).collect();
        let j = which % strata.len();
        strata[j].std_dev = match kind {
            0 => 0.0,
            1 => f64::NAN,
            _ => -2.5,
        };
        let budget = budget.max(floor * strata.len() as u64);
        let alloc = neyman_allocate(budget, &strata, floor);
        prop_assert_eq!(alloc[j], floor);
        prop_assert_eq!(alloc.iter().sum::<u64>(), budget);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// `pilot_samples == budget` degenerates to a pilot-only run: the
    /// Neyman allocation fires with nothing left to hand out, every
    /// stratum converges on its pilot, and the detailed spend is exactly
    /// warmup + one pilot per stratum.
    #[test]
    fn budget_equal_to_pilot_degenerates_to_a_pilot_only_run(
        pilot in 2u64..6,
        ntypes in 1u32..3,
        seed in any::<u64>(),
    ) {
        let len = (2 + 2 * u64::from(ntypes) * pilot + 12) as u32;
        let program = chain_program(len, ntypes, seed);
        let (result, _, report) = run_stratified(
            &program,
            MachineConfig::tiny_test(),
            1,
            TaskPointConfig::stratified(pilot, pilot),
        );
        prop_assert_eq!(report.allocated, Some(0));
        prop_assert_eq!(report.units(), ntypes as usize);
        prop_assert_eq!(report.converged_units(), report.units());
        // One worker, serial chain: W = 2 warmup completions, then the
        // round-robin type cycle meets every stratum's quota after
        // exactly `ntypes * pilot` detailed completions.
        prop_assert_eq!(result.detailed_tasks, 2 + u64::from(ntypes) * pilot);
        prop_assert_eq!(result.fast_tasks, u64::from(len) - result.detailed_tasks);
    }

    /// End-to-end budget conservation: on a serial two-type chain the
    /// detailed spend is exactly `warmup + budget` — the pilot overrun is
    /// impossible (quotas interleave), the Neyman extras sum to the
    /// remainder, and band re-opening cannot trigger at concurrency 1.
    #[test]
    fn detailed_spend_is_exactly_warmup_plus_budget(
        pilot in 2u64..6,
        extra in 0u64..30,
        seed in any::<u64>(),
    ) {
        let budget = 2 * pilot + extra;
        let len = (2 * budget + 8) as u32;
        let program = chain_program(len, 2, seed);
        let (result, _, report) = run_stratified(
            &program,
            MachineConfig::tiny_test(),
            1,
            TaskPointConfig::stratified(pilot, budget),
        );
        prop_assert_eq!(report.allocated, Some(extra));
        prop_assert_eq!(result.detailed_tasks, 2 + budget);
        prop_assert_eq!(report.converged_units(), report.units());
        prop_assert_eq!(report.reopened_bands(), 0);
    }
}

/// The `AccuracyReport` — strata, samples, bands, allocations, every
/// field — is byte-identical across detail-thread counts: stratum ids
/// come from the priming pass (instance-creation order), not from
/// execution interleaving.
#[test]
fn reports_are_byte_identical_across_detail_threads() {
    let program = barrier_program(4, 5, 3_000, 0x5EED);
    let run_at = |threads: usize| {
        let mut controller = StratifiedController::new(StratifiedConfig::new(4, 24));
        controller.prime(program.instances().iter().map(|i| (i.type_id(), i.instructions())));
        let result = Simulation::builder(&program, MachineConfig::high_performance())
            .workers(4)
            .detail_threads(threads)
            .parallel_min_task_instructions(500)
            .build()
            .run(&mut controller);
        let (_, report) = controller.into_parts();
        (result, format!("{report:?}"))
    };
    let (base_result, base_report) = run_at(1);
    for threads in [2usize, 4] {
        let (result, report) = run_at(threads);
        assert_eq!(result.total_cycles, base_result.total_cycles, "{threads} threads");
        assert_eq!(result.detailed_tasks, base_result.detailed_tasks, "{threads} threads");
        assert_eq!(result.fast_tasks, base_result.fast_tasks, "{threads} threads");
        assert_eq!(report, base_report, "{threads} threads: accuracy report drifted");
    }
}

/// The canonical campaign record of a stratified cell is byte-identical
/// across executor worker counts, and carries the stratified JSONL
/// fields.
#[test]
fn stratified_campaign_records_are_identical_across_worker_counts() {
    use taskpoint_repro::campaign::{Campaign, CellSpec, Executor, ResultStore};
    use taskpoint_repro::workloads::{Benchmark, ScaleConfig};

    let specs = vec![
        CellSpec::sampled(
            Benchmark::Spmv,
            ScaleConfig::quick(),
            MachineConfig::tiny_test(),
            2,
            TaskPointConfig::stratified(4, 64),
        ),
        CellSpec::sampled(
            Benchmark::Spmv,
            ScaleConfig::quick(),
            MachineConfig::tiny_test(),
            2,
            TaskPointConfig::stratified(4, 256),
        ),
    ];
    let a = Campaign::new(ResultStore::disabled(), Executor::new(1)).run(&specs);
    let b = Campaign::new(ResultStore::disabled(), Executor::new(4)).run(&specs);
    assert_eq!(a.jsonl(), b.jsonl(), "canonical JSONL must not depend on worker count");
    for outcome in &a.outcomes {
        let json = outcome.record.to_json();
        assert!(json.contains("\"strat_pilot\":4"), "{json}");
        assert!(json.contains("\"strat_budget\":"), "{json}");
        assert!(json.contains("\"strat_allocated\":"), "{json}");
        assert!(!json.contains("\"ci_target\":"), "budget-driven cells have no CI target");
    }
}
