//! Umbrella crate for the TaskPoint reproduction workspace.
//!
//! Re-exports all member crates so the workspace-level `examples/` and
//! integration `tests/` can reach every layer through one dependency.

pub use taskpoint;
pub use taskpoint_accuracy as accuracy;
pub use taskpoint_campaign as campaign;
pub use taskpoint_runtime as runtime;
pub use taskpoint_stats as stats;
pub use taskpoint_telemetry as telemetry;
pub use taskpoint_trace as trace;
pub use taskpoint_workloads as workloads;
pub use tasksim as sim;
