//! Minimal stand-in for `criterion` so `cargo bench`/`cargo test --benches`
//! work offline.
//!
//! Mirrors the API subset the workspace benches use: `Criterion`,
//! `benchmark_group`, `sample_size`, `throughput`, `bench_function`,
//! `bench_with_input`, `Bencher::iter`, `BenchmarkId`, `Throughput`, and
//! the `criterion_group!`/`criterion_main!` macros. Instead of criterion's
//! statistical machinery it times a fixed number of wall-clock samples and
//! prints the mean — enough to exercise every bench code path and give a
//! rough number.
//!
//! Under `cargo test` (criterion's `--test` mode passes the `--test` flag),
//! each benchmark body runs exactly once so test runs stay fast.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    /// Run each benchmark once without timing (set in `cargo test` mode).
    smoke_only: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let smoke_only = std::env::args().any(|a| a == "--test");
        Criterion { smoke_only }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: 10, throughput: None }
    }

    /// Registers a stand-alone benchmark (group of one).
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.to_string();
        let mut g = self.benchmark_group(name.clone());
        g.bench_function("", f);
        g.finish();
        self
    }
}

/// Identifier for one benchmark within a group: a function name plus a
/// parameter rendered with `Display`.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { function: function.into(), parameter: parameter.to_string() }
    }

    /// Creates an id from a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { function: String::new(), parameter: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match (self.function.is_empty(), self.parameter.is_empty()) {
            (false, false) => write!(f, "{}/{}", self.function, self.parameter),
            (false, true) => write!(f, "{}", self.function),
            _ => write!(f, "{}", self.parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { function: s.to_string(), parameter: String::new() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { function: s, parameter: String::new() }
    }
}

/// Units processed per iteration, used to report rates.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares the per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs a benchmark with no extra input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id, &mut |b| f(b));
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id, &mut |b| f(b, input));
        self
    }

    /// Ends the group. (Consumes nothing in this stub; reports were already
    /// printed per benchmark.)
    pub fn finish(self) {}

    fn run(&mut self, id: &BenchmarkId, f: &mut dyn FnMut(&mut Bencher)) {
        let samples = if self.criterion.smoke_only { 1 } else { self.sample_size };
        let mut total = Duration::ZERO;
        let mut iters_total: u64 = 0;
        for _ in 0..samples {
            let mut b = Bencher { elapsed: Duration::ZERO, iters: 0 };
            f(&mut b);
            total += b.elapsed;
            iters_total += b.iters;
        }
        let label = if id.to_string().is_empty() {
            self.name.clone()
        } else {
            format!("{}/{}", self.name, id)
        };
        if self.criterion.smoke_only {
            println!("bench {label}: ok (smoke)");
            return;
        }
        let mean = if iters_total > 0 { total / iters_total as u32 } else { Duration::ZERO };
        match self.throughput {
            Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
                let rate = n as f64 / mean.as_secs_f64();
                println!("bench {label}: {mean:?}/iter ({rate:.0} elem/s)");
            }
            Some(Throughput::Bytes(n)) if mean > Duration::ZERO => {
                let rate = n as f64 / mean.as_secs_f64() / (1 << 20) as f64;
                println!("bench {label}: {mean:?}/iter ({rate:.1} MiB/s)");
            }
            _ => println!("bench {label}: {mean:?}/iter"),
        }
    }
}

/// Timer handed to each benchmark body.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times repeated calls of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        black_box(f());
        self.elapsed += start.elapsed();
        self.iters += 1;
    }
}

/// Declares a function that runs a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running one or more `criterion_group!`s.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
