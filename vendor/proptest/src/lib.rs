//! Minimal stand-in for `proptest` so the workspace's property tests run
//! offline.
//!
//! Supports the subset the workspace uses: the `proptest!` macro (with an
//! optional `#![proptest_config(..)]` inner attribute), `prop_assert!` /
//! `prop_assert_eq!`, numeric-range strategies, `any::<T>()`, tuples of
//! strategies, and `prop::collection::vec`. Cases are generated from a
//! deterministic
//! per-test RNG (seeded from the test name), so failures reproduce
//! bit-for-bit across runs and platforms. There is no shrinking: a failing
//! case reports its inputs via the assertion message instead.

use std::marker::PhantomData;
use std::ops::Range;

/// Deterministic generator behind every strategy (SplitMix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from an arbitrary string (the test name), so
    /// each property test draws an independent, reproducible stream.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a folds the name into a 64-bit seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit value (SplitMix64 step).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Error returned by `prop_assert!` family; aborts the current case.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Creates a failure with the given explanation.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Per-`proptest!` block configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES").ok().and_then(|s| s.parse().ok()).unwrap_or(32);
        ProptestConfig { cases }
    }
}

/// Source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let off = (rng.next_u64() as u128) % span;
                (self.start as u128).wrapping_add(off) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + off) as $t
            }
        }
    )*};
}

impl_signed_range_strategy!(i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let u = rng.next_f64() as $t;
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (S0 0, S1 1);
    (S0 0, S1 1, S2 2);
    (S0 0, S1 1, S2 2, S3 3);
}

/// Types `any::<T>()` can produce.
pub trait ArbitraryValue {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy producing unconstrained values of `T`.
pub struct Any<T>(PhantomData<T>);

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy over all values of `T` (the stub supports integers and bool).
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy producing `Vec`s with lengths drawn from a range.
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// Vectors of `size` elements drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = Strategy::sample(&self.size, rng);
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// The names property tests are expected to import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
        TestCaseError,
    };

    /// Namespace mirror of the crate root (`prop::collection::vec`, ...).
    pub mod prop {
        pub use crate::any;
        pub use crate::collection;
    }
}

/// Defines property tests: each `fn name(arg in strategy, ..) { .. }` turns
/// into a `#[test]` that draws `cases` random inputs and runs the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                let outcome: ::core::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(e) = outcome {
                    panic!(
                        "property '{}' failed on case {}/{}: {}",
                        stringify!($name), case + 1, config.cases, e,
                    );
                }
            }
        }
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
}

/// Like `assert!` but aborts only the current proptest case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Like `assert_eq!` but aborts only the current proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($left),
            stringify!($right),
            left,
            right,
        );
    }};
}

/// Like `assert_ne!` but aborts only the current proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: {} != {} (both: {:?})",
            stringify!($left),
            stringify!($right),
            left,
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = crate::TestRng::deterministic("x");
        let mut b = crate::TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3u64..10, y in -2.0f64..2.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_bounds(xs in prop::collection::vec(0u8..4, 2..5)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 5);
            prop_assert!(xs.iter().all(|&v| v < 4));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]

        #[test]
        fn any_u64_draws(seed in any::<u64>()) {
            let _ = seed;
            prop_assert_eq!(1 + 1, 2);
        }
    }
}
