//! Minimal stand-in for `serde` so the workspace builds offline.
//!
//! Provides the `Serialize`/`Deserialize` names in both the type and macro
//! namespaces, exactly as the real crate does with the `derive` feature.
//! The traits are empty markers: nothing in this workspace serializes
//! values yet, it only derives the traits so downstream tooling can.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
