//! Minimal stand-in for the `bytes` crate so the workspace builds offline.
//!
//! Implements the subset used by `taskpoint-trace::encode`: building a
//! buffer with [`BytesMut`]/[`BufMut`], freezing it into [`Bytes`], and
//! consuming it through [`Buf`]. Unlike the real crate there is no
//! reference-counted sharing — `Bytes` owns its storage — but the visible
//! semantics (cheap `slice`, cursor-style reads) match.

use std::ops::{Bound, RangeBounds};

/// Read cursor over a byte buffer.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// Whether any bytes are left to consume.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Consumes one byte.
    ///
    /// # Panics
    /// Panics if the buffer is empty.
    fn get_u8(&mut self) -> u8;

    /// Consumes eight bytes as a little-endian `u64`.
    ///
    /// # Panics
    /// Panics if fewer than eight bytes remain.
    fn get_u64_le(&mut self) -> u64;
}

/// Write cursor appending to a byte buffer.
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);

    /// Appends eight bytes as a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64);
}

/// Immutable byte buffer with a read cursor.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Wraps a static byte slice.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes { data: bytes.to_vec(), pos: 0 }
    }

    /// Unconsumed length.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Whether the unconsumed view is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns a new `Bytes` viewing `range` of the unconsumed bytes.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        Bytes { data: self.data[self.pos + start..self.pos + end].to_vec(), pos: 0 }
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data, pos: 0 }
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u8(&mut self) -> u8 {
        let v = self.data[self.pos];
        self.pos += 1;
        v
    }

    fn get_u64_le(&mut self) -> u64 {
        let v = u64::from_le_bytes(self.data[self.pos..self.pos + 8].try_into().unwrap());
        self.pos += 8;
        v
    }
}

/// Growable byte buffer; freeze into [`Bytes`] when done writing.
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty buffer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data, pos: 0 }
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    fn put_u64_le(&mut self, v: u64) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut m = BytesMut::new();
        m.put_u8(7);
        m.put_u64_le(0x0102_0304_0506_0708);
        let mut b = m.freeze();
        assert_eq!(b.len(), 9);
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u64_le(), 0x0102_0304_0506_0708);
        assert!(!b.has_remaining());
    }

    #[test]
    fn slice_views_unconsumed_bytes() {
        let b = Bytes::from(vec![1, 2, 3, 4]);
        assert_eq!(b.slice(1..3), Bytes::from(vec![2, 3]));
        assert_eq!(b.slice(..).len(), 4);
    }
}
