//! No-op stand-in for `serde_derive` so the workspace builds offline.
//!
//! The derives accept the same attribute namespace as the real macros but
//! expand to nothing: no code in this workspace serializes values yet, so
//! the marker-trait impls are not needed either. Swapping in the real
//! `serde_derive` requires no source changes.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` (and `#[serde(...)]` attributes) and
/// expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` (and `#[serde(...)]` attributes) and
/// expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
