//! Heterogeneous big.LITTLE simulation — mixed-frequency core groups on
//! the discrete-event engine.
//!
//! Builds the big-little preset (2 big out-of-order cores at full clock
//! plus 2 in-order-ish little cores at clock divider 2, sharing the L2),
//! runs cholesky in full detail, prints the per-group cycle/IPC split
//! from `SimResult::groups`, then shows that TaskPoint sampling works
//! unchanged on the heterogeneous machine.
//!
//! ```sh
//! cargo run --release --example heterogeneous
//! ```

use taskpoint_repro::sim::MachineConfig;
use taskpoint_repro::taskpoint::{evaluate, run_reference, TaskPointConfig};
use taskpoint_repro::workloads::{Benchmark, ScaleConfig};

fn main() {
    let program = Benchmark::Cholesky.generate(&ScaleConfig::quick());
    let machine = MachineConfig::big_little(2, 2);
    let workers = machine.total_group_cores().expect("big.LITTLE preset defines core groups");

    let reference = run_reference(&program, machine.clone(), workers);
    println!(
        "{} on {} ({} workers): {} cycles, {} tasks in detail\n",
        program.name(),
        machine.name,
        workers,
        reference.total_cycles,
        reference.detailed_tasks
    );

    // The per-group split: busy cycles are core-local (the little group's
    // base-clock busy ticks divided by its clock divider), so IPC is
    // comparable across groups running at different frequencies.
    println!(
        "{:<8} {:>5} {:>8} {:>6} {:>12} {:>12} {:>6}",
        "group", "cores", "divider", "tasks", "instructions", "busy cycles", "ipc"
    );
    for g in &reference.groups {
        println!(
            "{:<8} {:>5} {:>8} {:>6} {:>12} {:>12} {:>6.2}",
            g.name,
            g.cores,
            g.clock_divider,
            g.detailed_tasks,
            g.instructions,
            g.busy_core_cycles(),
            g.ipc()
        );
    }

    // Sampling works unchanged on heterogeneous machines: the controller
    // samples per task type and fast-forwards wherever instances land.
    println!();
    for (label, config) in
        [("lazy", TaskPointConfig::lazy()), ("adaptive ci=5%", TaskPointConfig::adaptive(0.05))]
    {
        let (outcome, stats) =
            evaluate(&program, machine.clone(), workers, config, Some(&reference));
        println!(
            "{:<14} error {:>6.2}%  speedup {:>5.1}x  detail {:>5.1}%  fast tasks {}",
            label,
            outcome.error_percent,
            outcome.speedup,
            100.0 * outcome.detail_fraction,
            stats.fast_tasks
        );
    }

    println!("\nExpected shape: each little-core cycle costs 2 base-clock ticks, so the");
    println!("little group finishes fewer tasks per unit time and the scheduler's");
    println!("idle-core preference pushes most work onto the big cores. (Per *local*");
    println!("cycle the little group can even look better: memory latency halves in");
    println!("core-local cycles at divider 2.)");
}
