//! Design-space exploration — the use case the paper recommends lazy
//! sampling for ("evaluations requiring a large number of simulations,
//! e.g. during the early phase of design space exploration").
//!
//! Sweeps L2 size and ROB size of the high-performance machine across a
//! 3×3 grid and ranks the designs by simulated execution time of the
//! cholesky benchmark — all with sampled simulation, so the whole grid
//! costs about as much as one detailed run.
//!
//! ```sh
//! cargo run --release --example design_space_sweep
//! ```

use taskpoint_repro::sim::MachineConfig;
use taskpoint_repro::taskpoint::{run_sampled, TaskPointConfig};
use taskpoint_repro::workloads::{Benchmark, ScaleConfig};

fn main() {
    let program = Benchmark::Cholesky.generate(&ScaleConfig::new());
    let workers = 8;

    let mut results: Vec<(String, u64, f64)> = Vec::new();
    let mut total_wall = 0.0;
    for rob in [64u32, 168, 256] {
        for l2_kb in [512u64, 2048, 4096] {
            let mut machine = MachineConfig::high_performance();
            machine.core.rob_size = rob;
            machine.caches[1].size_bytes = l2_kb * 1024;
            machine.name = format!("rob{rob}-l2_{l2_kb}k");
            let (result, _) =
                run_sampled(&program, machine.clone(), workers, TaskPointConfig::lazy());
            total_wall += result.wall_seconds;
            results.push((machine.name, result.total_cycles, result.wall_seconds));
        }
    }

    results.sort_by_key(|r| r.1);
    println!("design ranking for {} @{workers} threads (best first):", program.name());
    for (i, (name, cycles, wall)) in results.iter().enumerate() {
        println!("  {:>2}. {name:<16} {cycles:>12} cycles   (simulated in {wall:.2}s)", i + 1);
    }
    println!("\nwhole 9-point design space explored in {total_wall:.2}s of host time");

    // Sanity expectations: bigger ROB and bigger L2 should not hurt.
    let best = &results[0].0;
    assert!(
        best.contains("rob256") || best.contains("rob168"),
        "a large-ROB design should win, got {best}"
    );
}
