//! Driving the campaign subsystem directly: build a custom cell matrix,
//! fan it out over the deterministic work-stealing executor, and read the
//! canonical records back.
//!
//! The sweep below is a miniature design-space study — two kernels × two
//! thread counts × both sampling policies on the low-power machine — run
//! twice to show the content-addressed cache at work: the second campaign
//! (a fresh object, fresh in-memory state) completes without simulating a
//! single cell.
//!
//! ```sh
//! cargo run --release --example campaign_sweep
//! ```

use taskpoint_repro::campaign::{Campaign, CellSpec, Executor, ResultStore};
use taskpoint_repro::taskpoint::TaskPointConfig;
use taskpoint_repro::workloads::{Benchmark, ScaleConfig};
use tasksim::MachineConfig;

fn main() {
    let scale = ScaleConfig::quick();
    let machine = MachineConfig::low_power();

    let mut specs = Vec::new();
    for bench in [Benchmark::Spmv, Benchmark::Reduction] {
        for workers in [2u32, 4] {
            for config in [TaskPointConfig::lazy(), TaskPointConfig::periodic()] {
                specs.push(CellSpec::sampled(bench, scale, machine.clone(), workers, config));
            }
        }
    }

    // A store under target/ keeps this example self-contained; real
    // campaigns default to results/campaign (ResultStore::open_default).
    let store_root = std::path::Path::new("target").join("example-campaign");
    let _ = std::fs::remove_dir_all(&store_root);

    let campaign = Campaign::new(ResultStore::at(&store_root), Executor::new(4));
    let report = campaign.run(&specs);
    println!(
        "first run:  {} cells, {} computed, {} cached, {:.2}s",
        report.outcomes.len(),
        report.computed,
        report.cached,
        report.wall_seconds
    );
    for outcome in &report.outcomes {
        let m = outcome.record.metrics.as_eval().expect("sampled cell");
        println!(
            "  {:<44} err {:5.2}%  detail {:5.1}%  [{}]",
            outcome.spec.label(),
            m.error_percent,
            100.0 * m.detail_fraction,
            &outcome.record.cell[..12],
        );
    }

    // A brand-new campaign over the same store: pure cache.
    let rerun = Campaign::new(ResultStore::at(&store_root), Executor::new(4)).run(&specs);
    println!(
        "second run: {} cells, {} computed, {} cached, {:.2}s",
        rerun.outcomes.len(),
        rerun.computed,
        rerun.cached,
        rerun.wall_seconds
    );
    assert_eq!(rerun.computed, 0, "second run must be served from the store");
    assert_eq!(report.jsonl(), rerun.jsonl(), "canonical bytes are reproducible");
    println!("canonical JSONL is byte-identical across runs — {} bytes", report.jsonl().len());
}
