//! External-trace ingestion — foreign `*.tptrace` event streams as
//! first-class simulator input.
//!
//! The pipeline this example walks end to end:
//!
//! 1. parse a checked-in `*.tptrace` fixture (Paraver/TaskSim-style event
//!    stream; format spec in `docs/TRACE_FORMATS.md`) into an
//!    [`IngestedTrace`], with strict validation;
//! 2. convert it into a task [`Program`] (types, instances, recorded
//!    dependences) plus a `RecordedTraces` bundle (the concrete per-task
//!    instruction streams);
//! 3. round-trip the bundle through the persistent container format;
//! 4. simulate it in full detail and TaskPoint-sampled, and show the
//!    sampled run replays the *same recorded instructions* (bit-identical
//!    reference across two runs, small sampling error against it).
//!
//! ```sh
//! cargo run --release --example ingest_trace
//! ```
//!
//! [`IngestedTrace`]: taskpoint_repro::trace::IngestedTrace
//! [`Program`]: taskpoint_repro::runtime::Program

use taskpoint_repro::runtime::program_from_ingested;
use taskpoint_repro::sim::{MachineConfig, RecordedTraces};
use taskpoint_repro::taskpoint::{
    run_reference_traced, run_sampled_traced, ExperimentOutcome, TaskPointConfig,
};
use taskpoint_repro::trace::{IngestError, IngestedTrace};
use taskpoint_repro::workloads::ExternalWorkload;

fn main() {
    // 1. Ingest the fixture (text encoding; the parser auto-detects).
    let workload = ExternalWorkload::DagMini;
    let trace = IngestedTrace::parse(workload.fixture_bytes()).expect("fixture is valid");
    println!(
        "ingested {}: {} types, {} tasks, {} threads, {} instructions",
        workload.name(),
        trace.num_types(),
        trace.num_tasks(),
        trace.threads(),
        trace.total_instructions()
    );

    // Malformed input is a typed error, never a panic.
    let err = IngestedTrace::parse_text("%tptrace 1\nB:0:0:99\n").unwrap_err();
    assert!(matches!(err, IngestError::UnknownTaskType { type_id: 99, .. }));
    println!("malformed input example: {err}");

    // 2. Convert: program + recorded-stream bundle, mutually consistent.
    let program = program_from_ingested(workload.name(), &trace);
    let bundle = RecordedTraces::from_ingested(&trace);
    bundle.verify_against(&program).expect("bundle matches the converted program");

    // 3. Persist and reload the bundle.
    let path = std::env::temp_dir().join("taskpoint_ingested.bundle");
    bundle.write_to(&path).expect("write bundle");
    let reloaded = RecordedTraces::read_from(&path).expect("read bundle");
    std::fs::remove_file(&path).ok();
    println!("bundle round-tripped through {} ({} tasks)", path.display(), reloaded.len());

    // 4. Simulate: detailed reference and sampled run, both replaying the
    // recorded streams.
    let machine = MachineConfig::low_power();
    let reference = run_reference_traced(&program, machine.clone(), 2, Box::new(reloaded.clone()));
    let again = run_reference_traced(&program, machine.clone(), 2, Box::new(reloaded.clone()));
    assert_eq!(reference.total_cycles, again.total_cycles, "replay is deterministic");
    let (sampled, _) =
        run_sampled_traced(&program, machine, 2, TaskPointConfig::lazy(), Box::new(reloaded));
    let outcome = ExperimentOutcome::compare(&sampled, &reference);
    println!(
        "reference {} cycles | sampled {} cycles ({} detailed / {} fast) | error {:.2}%",
        reference.total_cycles,
        sampled.total_cycles,
        sampled.detailed_tasks,
        sampled.fast_tasks,
        outcome.error_percent
    );
    assert_eq!(reference.detailed_instructions, trace.total_instructions());
}
