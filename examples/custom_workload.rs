//! Building and sampling a custom task-based program with the public API.
//!
//! Models a small producer/consumer pipeline that is *not* part of the
//! paper's suite: a "decode" stage fans out into parallel "filter" tasks
//! which a "merge" stage folds back, per frame. Shows how to declare task
//! types, region dependences and per-type trace characteristics, then runs
//! TaskPoint on it.
//!
//! ```sh
//! cargo run --release --example custom_workload
//! ```

use taskpoint_repro::runtime::{Program, RegionAccess};
use taskpoint_repro::sim::MachineConfig;
use taskpoint_repro::taskpoint::{run_reference, run_sampled, TaskPointConfig};
use taskpoint_repro::trace::{AccessPattern, InstructionMix, TraceSpec};
use taskpoint_repro::workloads::AddressAllocator;

fn main() {
    const FRAMES: u64 = 300;
    const FILTERS: u64 = 12;

    let mut b = Program::builder("video-pipeline");
    let decode_ty = b.add_type("decode");
    let filter_ty = b.add_type("filter");
    let merge_ty = b.add_type("merge");
    let mut alloc = AddressAllocator::new();

    for frame in 0..FRAMES {
        let raw = alloc.alloc_lines(64 * 1024);
        let decode_trace = TraceSpec::builder()
            .seed(frame * 101)
            .code_seed(1)
            .instructions(2_000)
            .mix(InstructionMix::irregular_int())
            .pattern(AccessPattern::sequential(16))
            .footprint(raw)
            .branch_mispredict_rate(0.03)
            .build();
        b.add_task(decode_ty, decode_trace, vec![RegionAccess::output(raw)]);

        let mut tiles = Vec::new();
        for f in 0..FILTERS {
            let tile = alloc.alloc_lines(16 * 1024);
            let filter_trace = TraceSpec::builder()
                .seed(frame * 101 + f + 1)
                .code_seed(2)
                .instructions(1_200)
                .mix(InstructionMix::balanced())
                .pattern(AccessPattern::strided(128, 2))
                .footprint(tile)
                .build();
            b.add_task(
                filter_ty,
                filter_trace,
                vec![RegionAccess::input(raw), RegionAccess::output(tile)],
            );
            tiles.push(tile);
        }

        let out = alloc.alloc_lines(8 * 1024);
        let mut accesses = vec![RegionAccess::output(out)];
        accesses.extend(tiles.iter().map(|&t| RegionAccess::input(t)));
        let merge_trace = TraceSpec::builder()
            .seed(frame * 101 + 99)
            .code_seed(3)
            .instructions(800)
            .mix(InstructionMix::memory_bound())
            .pattern(AccessPattern::sequential(8))
            .footprint(out)
            .build();
        b.add_task(merge_ty, merge_trace, accesses);
    }
    let program = b.build();
    println!(
        "{}: {} types, {} instances, DAG depth {}",
        program.name(),
        program.num_types(),
        program.num_instances(),
        program.graph().critical_path_len()
    );

    let machine = MachineConfig::low_power();
    let reference = run_reference(&program, machine.clone(), 4);
    let (sampled, stats) = run_sampled(&program, machine, 4, TaskPointConfig::periodic());
    let error = 100.0
        * ((sampled.total_cycles as f64 - reference.total_cycles as f64)
            / reference.total_cycles as f64)
            .abs();
    println!(
        "reference {} cycles | sampled {} cycles | error {error:.2}% | speedup {:.1}x",
        reference.total_cycles,
        sampled.total_cycles,
        reference.wall_seconds / sampled.wall_seconds
    );
    println!(
        "sampling: {} detailed, {} fast, {} resamples",
        stats.detailed_tasks,
        stats.fast_tasks,
        stats.resamples.len()
    );
}
