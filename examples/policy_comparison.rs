//! Periodic vs lazy sampling — the paper's §V-C comparison on a single
//! benchmark, across sampling periods.
//!
//! Shows the trade-off the paper summarizes as "lazy sampling achieves much
//! greater speedup than periodic sampling at a comparable error": sweeps
//! P ∈ {10, 50, 250, 1000, ∞} on the n-body kernel and prints error,
//! speedup and detail fraction for each.
//!
//! ```sh
//! cargo run --release --example policy_comparison
//! ```

use taskpoint_repro::sim::MachineConfig;
use taskpoint_repro::taskpoint::{evaluate, run_reference, SamplingPolicy, TaskPointConfig};
use taskpoint_repro::workloads::{Benchmark, ScaleConfig};

fn main() {
    let program = Benchmark::Nbody.generate(&ScaleConfig::new());
    let machine = MachineConfig::high_performance();
    let workers = 16;

    let reference = run_reference(&program, machine.clone(), workers);
    println!(
        "{} @{workers} threads: reference {} cycles ({:.2}s)\n",
        program.name(),
        reference.total_cycles,
        reference.wall_seconds
    );
    println!(
        "{:<10} {:>8} {:>10} {:>10} {:>10}",
        "policy", "error%", "speedup", "detail%", "resamples"
    );

    let mut configs: Vec<(String, TaskPointConfig)> = [10u64, 50, 250, 1000]
        .into_iter()
        .map(|p| {
            (
                format!("P={p}"),
                TaskPointConfig::periodic().with_policy(SamplingPolicy::Periodic { period: p }),
            )
        })
        .collect();
    configs.push(("lazy".to_string(), TaskPointConfig::lazy()));
    // The confidence-driven policy at three CI targets: the error/speedup
    // frontier the accuracy subsystem adds on top of the paper's policies.
    for target in [0.10, 0.05, 0.02] {
        configs.push((format!("ci={:.0}%", 100.0 * target), TaskPointConfig::adaptive(target)));
    }

    for (name, config) in configs {
        let (outcome, stats) =
            evaluate(&program, machine.clone(), workers, config, Some(&reference));
        println!(
            "{:<10} {:>8.2} {:>9.1}x {:>9.2}% {:>10}",
            name,
            outcome.error_percent,
            outcome.speedup,
            100.0 * outcome.detail_fraction,
            stats.resamples.len()
        );
    }
    println!("\nExpected shape (paper Fig. 6c): error and speedup both grow with P;");
    println!("lazy (P=inf) maximizes speedup at comparable error.");
}
