//! Recorded-trace ingestion — the full record → persist → replay round
//! trip.
//!
//! The original TaskSim is driven by instruction traces recorded from
//! native executions. This example shows the reproduction's equivalent
//! pipeline end to end:
//!
//! 1. "record" a benchmark by materializing every task instance's
//!    procedural stream into the compact binary `encode` format,
//! 2. persist the bundle to disk and read it back (validating every
//!    record),
//! 3. re-simulate the program from the recorded file through the batched
//!    block pipeline, and
//! 4. assert the replay is bit-identical to the procedural simulation.
//!
//! ```sh
//! cargo run --release --example recorded_trace
//! ```

use taskpoint_repro::sim::{DetailedOnly, MachineConfig, RecordedTraces, Simulation};
use taskpoint_repro::workloads::{Benchmark, ScaleConfig};

fn main() {
    let bench = Benchmark::Spmv;
    let program = bench.generate(&ScaleConfig::quick());
    let machine = MachineConfig::high_performance();
    let workers = 4;

    // 1. Record every task instance's instruction stream.
    let recorded = RecordedTraces::record_program(&program);
    recorded.verify_against(&program).expect("recording matches the program's specs");
    println!(
        "recorded {}: {} tasks, {:.1} MiB of encoded trace",
        program.name(),
        recorded.len(),
        recorded.total_bytes() as f64 / (1 << 20) as f64
    );

    // 2. Persist and reload (the reload re-validates every record).
    let path = std::env::temp_dir().join("taskpoint_recorded_trace.tptrace");
    recorded.write_to(&path).expect("write trace bundle");
    let reloaded = RecordedTraces::read_from(&path).expect("read trace bundle");
    std::fs::remove_file(&path).ok();
    println!("round-tripped bundle through {} ({} tasks)", path.display(), reloaded.len());

    // 3. Simulate twice: procedurally, and from the recorded file.
    let procedural = Simulation::builder(&program, machine.clone())
        .workers(workers)
        .build()
        .run(&mut DetailedOnly);
    let replayed = Simulation::builder(&program, machine)
        .workers(workers)
        .traces(Box::new(reloaded))
        .build()
        .run(&mut DetailedOnly);

    // 4. Bit-identical results.
    assert_eq!(replayed.total_cycles, procedural.total_cycles);
    assert_eq!(replayed.detailed_tasks, procedural.detailed_tasks);
    assert_eq!(replayed.detailed_instructions, procedural.detailed_instructions);
    assert_eq!(replayed.invalidations, procedural.invalidations);
    assert_eq!(replayed.dram_accesses, procedural.dram_accesses);
    println!(
        "replay identical to procedural run: {} cycles, {} tasks, {} instructions",
        replayed.total_cycles, replayed.detailed_tasks, replayed.detailed_instructions
    );
    for (label, r) in [("procedural", &procedural), ("recorded  ", &replayed)] {
        if let Some(ips) = r.detailed_instr_per_sec() {
            println!("  {label} detailed-mode throughput: {:.2} Minstr/s", ips / 1e6);
        }
    }
}
