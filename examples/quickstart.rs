//! Quickstart: sampled simulation of one benchmark in a dozen lines.
//!
//! Runs the sparse-matrix-vector kernel on the paper's high-performance
//! machine with 8 simulated threads, once in full detail and once with
//! TaskPoint's lazy sampling, and compares the two.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use taskpoint_repro::sim::MachineConfig;
use taskpoint_repro::taskpoint::{run_reference, run_sampled, TaskPointConfig};
use taskpoint_repro::workloads::{Benchmark, ScaleConfig};

fn main() {
    // 1. Generate a task-based program (1,024 row-block tasks, Table I).
    let program = Benchmark::Spmv.generate(&ScaleConfig::new());
    println!(
        "program: {} — {} task types, {} task instances, {:.1}M instructions",
        program.name(),
        program.num_types(),
        program.num_instances(),
        program.total_instructions() as f64 / 1e6
    );

    let machine = MachineConfig::high_performance();

    // 2. Full detailed reference simulation (every instruction through the
    //    ROB-occupancy core model and the cache hierarchy).
    let reference = run_reference(&program, machine.clone(), 8);
    println!(
        "reference: {} cycles in {:.2}s of host time",
        reference.total_cycles, reference.wall_seconds
    );

    // 3. TaskPoint sampled simulation (lazy policy: sample once, then
    //    fast-forward every instance at its task type's mean IPC).
    let (sampled, stats) = run_sampled(&program, machine, 8, TaskPointConfig::lazy());
    println!(
        "sampled:   {} cycles in {:.2}s of host time ({} detailed / {} fast tasks)",
        sampled.total_cycles, sampled.wall_seconds, stats.detailed_tasks, stats.fast_tasks
    );

    // 4. The two numbers the paper reports per benchmark.
    let error = 100.0
        * ((sampled.total_cycles as f64 - reference.total_cycles as f64)
            / reference.total_cycles as f64)
            .abs();
    let speedup = reference.wall_seconds / sampled.wall_seconds;
    println!("error {error:.2}%  speedup {speedup:.1}x");
}
