//! Deep dive into one workload: what TaskPoint actually does during a
//! sampled simulation of the 48-tile blocked Cholesky factorization.
//!
//! Prints the task-type inventory, the DAG shape, the controller's phase
//! transitions, per-type sample counts and the final accuracy — a guided
//! tour of the methodology on the paper's most classical dependence
//! structure (potrf/trsm/syrk/gemm).
//!
//! ```sh
//! cargo run --release --example cholesky_deep_dive
//! ```

use taskpoint_repro::sim::MachineConfig;
use taskpoint_repro::taskpoint::{run_reference, run_sampled, TaskPointConfig};
use taskpoint_repro::workloads::{Benchmark, ScaleConfig};

fn main() {
    let program = Benchmark::Cholesky.generate(&ScaleConfig::new());
    let graph = program.graph();

    println!("== workload structure ==");
    let per_type = program.instances_per_type();
    let instr_per_type = program.instructions_per_type();
    for ty in program.types() {
        let i = ty.id().0 as usize;
        println!(
            "  {:<6} {:>6} instances, {:>5.1}M instructions",
            ty.name(),
            per_type[i],
            instr_per_type[i] as f64 / 1e6
        );
    }
    println!(
        "  DAG: {} edges, critical path {} tasks deep",
        graph.edge_count(),
        graph.critical_path_len()
    );

    let machine = MachineConfig::high_performance();
    let workers = 16;

    println!("\n== detailed reference ({workers} threads) ==");
    let reference = run_reference(&program, machine.clone(), workers);
    println!(
        "  {} cycles, {:.2}s host time, {} DRAM fetches, {} invalidations",
        reference.total_cycles,
        reference.wall_seconds,
        reference.dram_accesses,
        reference.invalidations
    );

    println!("\n== TaskPoint sampled run (periodic, P=250) ==");
    let (sampled, stats) = run_sampled(&program, machine, workers, TaskPointConfig::periodic());
    println!(
        "  {} cycles, {:.2}s host time, {:.2}% of instructions in detail",
        sampled.total_cycles,
        sampled.wall_seconds,
        100.0 * sampled.detail_fraction()
    );
    println!("  phase transitions (first 10):");
    for (time, phase) in stats.phase_log.iter().take(10) {
        println!("    cycle {time:>9}: {phase:?}");
    }
    println!("  resamples: {}", stats.resamples.len());
    println!("  valid samples measured per type:");
    let mut per_type: Vec<(u32, u64)> = stats.valid_samples.iter().map(|(&t, &n)| (t, n)).collect();
    per_type.sort_unstable();
    for (ty, n) in per_type {
        println!("    {:<6} {n}", program.types()[ty as usize].name());
    }

    let error = 100.0
        * ((sampled.total_cycles as f64 - reference.total_cycles as f64)
            / reference.total_cycles as f64)
            .abs();
    println!("\nerror {error:.2}%  speedup {:.1}x", reference.wall_seconds / sampled.wall_seconds);
}
